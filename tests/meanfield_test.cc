// Differential verification of the mean-field (fluid) fidelity tier
// against the discrete-event simulator, plus the fluid state invariants.
//
// The ladder contract (sim/meanfield.h): rung 2 must track rung 3 on the
// aggregate quantities campaigns consume — utilization, served volume,
// energy/carbon, and the p95 tail — while costing arithmetic instead of
// events. The grid below reuses the PR-4 differential setup (a BASE
// deployment of c full-GPU classification instances under exponential
// service IS an M/M/c queue) across every fleet size the paper's
// experiments use and light/sized/heavy load.
//
// Tolerances, chosen to pass with >= 3x margin at the pinned seeds while
// catching systematic bias:
//   * utilization        0.02 absolute — fluid busy fraction is exact
//                        rho; the simulator's measured value fluctuates.
//   * completions        1.5% relative — fluid mass is exactly lambda*T;
//                        Poisson counts vary ~1/sqrt(lambda*T).
//   * energy, carbon     2.5% relative — follow busy seconds.
//   * p95                12% relative — the fluid tail is the analytic
//                        M/M/c sojourn quantile (the same 10% band the
//                        surrogate gate uses) plus the synthetic
//                        histogram's bin resolution.
//   * fleet aggregation  5% on totals when RunFleetMeanField replaces
//                        RunFleet's discrete regions (router feedback
//                        compounds small per-window differences).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "carbon/trace.h"
#include "common/check.h"
#include "common/units.h"
#include "fleet/fleet_sim.h"
#include "fleet/meanfield_fleet.h"
#include "graph/config_graph.h"
#include "models/zoo.h"
#include "opt/meanfield_eval.h"
#include "opt/surrogate.h"
#include "perf/perf_model.h"
#include "serving/deployment.h"
#include "sim/cluster_sim.h"
#include "sim/meanfield.h"
#include "testing/proptest.h"

namespace clover::sim {
namespace {

const carbon::CarbonTrace& FlatTrace() {
  static const carbon::CarbonTrace kFlat("meanfield-flat", 3600.0,
                                         std::vector<double>(4000, 250.0));
  return kFlat;
}

double ServiceRatePerServer() {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::ModelFamily& family =
      zoo.ForApplication(models::Application::kClassification);
  return 1.0 / MsToSeconds(perf::PerfModel::LatencyMs(
                   family, family.Largest(), mig::SliceType::k7g));
}

SimOptions MmcOptions(int servers, double rho, std::uint64_t seed) {
  SimOptions options;
  options.arrival_rate_qps = rho * servers * ServiceRatePerServer();
  options.seed = seed;
  options.window_seconds = 600.0;
  options.service_model = ServiceModel::kExponential;
  return options;
}

struct TierComparison {
  double fluid_utilization = 0.0, sim_utilization = 0.0;
  std::uint64_t fluid_completions = 0, sim_completions = 0;
  double fluid_energy_j = 0.0, sim_energy_j = 0.0;
  double fluid_carbon_g = 0.0, sim_carbon_g = 0.0;
  double fluid_p95_ms = 0.0, sim_p95_ms = 0.0;
};

TierComparison CompareTiers(int servers, double rho, std::uint64_t seed,
                            double duration_s) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, servers);
  const SimOptions options = MmcOptions(servers, rho, seed);

  MeanFieldSim fluid(base, zoo, &FlatTrace(), options);
  fluid.AdvanceTo(duration_s);
  ClusterSim sim(base, zoo, &FlatTrace(), options);
  sim.AdvanceTo(duration_s);

  TierComparison c;
  c.fluid_utilization =
      fluid.total_busy_seconds() / (servers * duration_s);
  c.sim_utilization = sim.total_busy_seconds() / (servers * duration_s);
  c.fluid_completions = fluid.total_completions();
  c.sim_completions = sim.total_completions();
  c.fluid_energy_j = fluid.total_energy_j();
  c.sim_energy_j = sim.total_energy_j();
  c.fluid_carbon_g = fluid.total_carbon_g();
  c.sim_carbon_g = sim.total_carbon_g();
  c.fluid_p95_ms = fluid.OverallP95Ms();
  c.sim_p95_ms = sim.OverallQuantileMs(0.95);
  return c;
}

TEST(MeanFieldDifferential, TracksTheSimulatorAcrossTheGrid) {
  const std::vector<int> server_grid = {1, 2, 4, 8};
  const std::vector<double> rho_grid = {0.35, 0.6, 0.8};
  std::uint64_t seed = 7000;
  for (int servers : server_grid) {
    for (double rho : rho_grid) {
      // Long enough that the simulator's empty-system transient and
      // Poisson noise are small against the documented bands.
      const double duration_s = 4.0 * 3600.0;
      const TierComparison c =
          CompareTiers(servers, rho, ++seed, duration_s);
      const std::string where =
          "c=" + std::to_string(servers) + " rho=" + std::to_string(rho);
      EXPECT_NEAR(c.fluid_utilization, c.sim_utilization, 0.02) << where;
      EXPECT_NEAR(static_cast<double>(c.fluid_completions),
                  static_cast<double>(c.sim_completions),
                  0.015 * static_cast<double>(c.sim_completions))
          << where;
      EXPECT_NEAR(c.fluid_energy_j, c.sim_energy_j,
                  0.025 * c.sim_energy_j)
          << where;
      EXPECT_NEAR(c.fluid_carbon_g, c.sim_carbon_g,
                  0.025 * c.sim_carbon_g)
          << where;
      EXPECT_NEAR(c.fluid_p95_ms, c.sim_p95_ms, 0.12 * c.sim_p95_ms)
          << where << " (fluid p95 " << c.fluid_p95_ms << " ms vs sim "
          << c.sim_p95_ms << " ms)";
    }
  }
}

TEST(MeanFieldSimTest, ConservesMass) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, 2);
  const SimOptions options = MmcOptions(2, 0.7, 1);
  MeanFieldSim fluid(base, zoo, &FlatTrace(), options);
  fluid.AdvanceTo(7200.0);
  // arrivals = completions + backlog, in mass. The integerized counters
  // may differ by the floor, never by more than one request plus backlog.
  const double arrivals = options.arrival_rate_qps * 7200.0;
  EXPECT_NEAR(static_cast<double>(fluid.total_arrivals()), arrivals, 1.0);
  EXPECT_NEAR(static_cast<double>(fluid.total_completions()) +
                  fluid.backlog(),
              arrivals, 1.0);
  EXPECT_EQ(fluid.windows().size(), 12u);
  EXPECT_EQ(fluid.steps(), 12u);
}

TEST(MeanFieldSimTest, RejectsFaultsAndBursts) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, 2);
  SimOptions faulty = MmcOptions(2, 0.5, 1);
  faulty.faults.gpu_faults.push_back({0, 100.0, 200.0});
  EXPECT_THROW(MeanFieldSim(base, zoo, &FlatTrace(), faulty),
               CheckError);
  SimOptions bursty = MmcOptions(2, 0.5, 1);
  bursty.burst.rate_multiplier = 2.0;
  EXPECT_THROW(MeanFieldSim(base, zoo, &FlatTrace(), bursty),
               CheckError);
}

TEST(MeanFieldSimTest, OverloadAccumulatesFiniteBacklogTail) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, 1);
  SimOptions options = MmcOptions(1, 1.5, 1);  // 150% of capacity
  MeanFieldSim fluid(base, zoo, &FlatTrace(), options);
  fluid.AdvanceTo(3600.0);
  EXPECT_GT(fluid.backlog(), 0.0);
  for (const WindowRecord& window : fluid.windows()) {
    EXPECT_TRUE(std::isfinite(window.p95_ms));
    EXPECT_GT(window.p95_ms, 0.0);
  }
  // Later windows carry more backlog, so the quoted drain tail grows —
  // overloaded configurations are ranked by how badly they fail.
  EXPECT_GT(fluid.windows().back().p95_ms, fluid.windows().front().p95_ms);
}

// Under a stable load the mean-field evaluator and the surrogate quote the
// same steady-state latency (both collapse to the same aggregate M/M/c and
// call the same sim/analytic.h oracles).
TEST(MeanFieldEvaluatorTest, AgreesWithSurrogateAtSteadyState) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const int num_gpus = 4;
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, num_gpus);
  const graph::ConfigGraph graph =
      graph::ConfigGraph::FromDeployment(base, zoo);

  const double rate = 0.6 * num_gpus * ServiceRatePerServer();
  opt::SurrogateEvaluator::Options surrogate_options;
  surrogate_options.arrival_rate_qps = rate;
  surrogate_options.service_model = ServiceModel::kExponential;
  opt::SurrogateEvaluator surrogate(&zoo, num_gpus, surrogate_options);

  opt::MeanFieldEvaluator::Options fluid_options;
  fluid_options.arrival_rate_qps = rate;
  fluid_options.service_model = ServiceModel::kExponential;
  opt::MeanFieldEvaluator fluid(&zoo, num_gpus, fluid_options);

  const opt::EvalOutcome a = surrogate.Evaluate(graph);
  const opt::EvalOutcome b = fluid.Evaluate(graph);
  EXPECT_NEAR(b.metrics.p95_ms, a.metrics.p95_ms,
              0.05 * a.metrics.p95_ms);
  EXPECT_NEAR(b.metrics.accuracy, a.metrics.accuracy, 0.5);
  // Energy recipes differ (the fluid tier integrates the static floor over
  // its horizon; the surrogate amortizes it at the offered rate), so only
  // sanity-bound the ratio.
  EXPECT_GT(b.metrics.energy_per_request_j, 0.0);
  EXPECT_LT(b.metrics.energy_per_request_j,
            10.0 * a.metrics.energy_per_request_j);
}

// Seeded property: whatever rate schedule the router throws at the fluid
// region — including overload and idle stretches — the aggregate state
// stays finite and non-negative, and no window goes NaN.
TEST(MeanFieldSimTest, RandomRateSchedulesKeepStateSane) {
  testing::prop::Config config;
  config.name = "meanfield-state-sane";
  config.seed = 99;
  config.iterations = 12;

  struct Schedule {
    int servers = 1;
    std::vector<double> rates;  // one per 300 s control interval
  };
  testing::prop::Domain<Schedule> domain;
  domain.generate = [](testing::prop::Gen& gen) {
    Schedule schedule;
    schedule.servers = static_cast<int>(gen.IntInRange(1, 8));
    const double capacity =
        schedule.servers * ServiceRatePerServer();
    const std::size_t intervals = gen.IntInRange(3, 16);
    for (std::size_t i = 0; i < intervals; ++i) {
      // 0 (idle) to 2x capacity (heavy overload).
      schedule.rates.push_back(gen.Uniform(0.0, 2.0 * capacity));
    }
    return schedule;
  };
  domain.describe = [](const Schedule& schedule) {
    std::ostringstream os;
    os << "servers=" << schedule.servers << " rates=[";
    for (double rate : schedule.rates) os << rate << " ";
    os << "]";
    return os.str();
  };

  const auto outcome = testing::prop::Check<Schedule>(
      config, domain,
      [](const Schedule& schedule) -> std::optional<std::string> {
        const models::ModelZoo& zoo = models::DefaultZoo();
        const serving::Deployment base = serving::MakeBase(
            models::Application::kClassification, schedule.servers);
        SimOptions options = MmcOptions(schedule.servers, 0.5, 1);
        options.arrival_rate_qps = schedule.rates[0];
        MeanFieldSim fluid(base, zoo, &FlatTrace(), options);
        double t = 0.0;
        for (double rate : schedule.rates) {
          fluid.SetArrivalRate(rate);
          t += 300.0;
          fluid.AdvanceTo(t);
        }
        if (!(fluid.backlog() >= 0.0) || !std::isfinite(fluid.backlog()))
          return "backlog " + std::to_string(fluid.backlog());
        if (fluid.total_completions() > fluid.total_arrivals())
          return "served more than arrived";
        if (!std::isfinite(fluid.total_energy_j()) ||
            fluid.total_energy_j() < 0.0)
          return "energy " + std::to_string(fluid.total_energy_j());
        for (const WindowRecord& window : fluid.windows()) {
          if (!std::isfinite(window.p95_ms) || window.p95_ms < 0.0)
            return "window p95 " + std::to_string(window.p95_ms);
          if (!std::isfinite(window.mean_ms) || window.mean_ms < 0.0)
            return "window mean " + std::to_string(window.mean_ms);
          if (!std::isfinite(window.carbon_g) || window.carbon_g < 0.0)
            return "window carbon " + std::to_string(window.carbon_g);
        }
        return std::nullopt;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report;
}

// The fleet fast path against the discrete-event fleet: same config, BASE
// scheme, both routers. The fluid tier must land within the documented
// band on the fleet-level totals the campaign report consumes.
TEST(MeanFieldFleetTest, TracksDiscreteEventFleet) {
  for (const fleet::RouterPolicy router :
       {fleet::RouterPolicy::kStatic, fleet::RouterPolicy::kCarbonGreedy}) {
    fleet::FleetConfig config;
    config.app = models::Application::kClassification;
    config.regions =
        fleet::RegionsFromPresets({"us-west", "ap-northeast"}, 2);
    config.duration_hours = 2.0;
    config.scheme = core::Scheme::kBase;
    config.router = router;
    config.seed = 5;

    const models::ModelZoo& zoo = models::DefaultZoo();
    const fleet::FleetReport reference = fleet::RunFleet(config, zoo);
    const fleet::FleetReport fluid = fleet::RunFleetMeanField(config, zoo);

    const std::string where =
        std::string("router=") + fleet::RouterPolicyName(router);
    EXPECT_EQ(fluid.regions.size(), reference.regions.size()) << where;
    EXPECT_EQ(fluid.fleet.windows.size(), reference.fleet.windows.size())
        << where;
    const auto close = [&](double fluid_value, double reference_value,
                           double band, const char* what) {
      EXPECT_NEAR(fluid_value, reference_value,
                  band * std::abs(reference_value))
          << where << " " << what;
    };
    close(static_cast<double>(fluid.fleet.completions),
          static_cast<double>(reference.fleet.completions), 0.05,
          "completions");
    close(fluid.fleet.total_energy_j, reference.fleet.total_energy_j, 0.05,
          "energy");
    close(fluid.fleet.total_carbon_g, reference.fleet.total_carbon_g, 0.05,
          "carbon");
    close(fluid.fleet.weighted_accuracy, reference.fleet.weighted_accuracy,
          0.01, "accuracy");
    close(fluid.fleet.overall_p95_ms, reference.fleet.overall_p95_ms, 0.25,
          "p95");
  }
}

// Determinism: the fluid tier is pure arithmetic — two runs of the same
// fleet config must be bit-identical (the campaign resume/dedup contract).
TEST(MeanFieldFleetTest, RunsAreBitIdentical) {
  fleet::FleetConfig config;
  config.app = models::Application::kClassification;
  config.regions = fleet::RegionsFromPresets({"us-west", "eu-west"}, 2);
  config.duration_hours = 1.0;
  config.scheme = core::Scheme::kBase;
  config.router = fleet::RouterPolicy::kCarbonGreedy;
  config.seed = 11;
  const models::ModelZoo& zoo = models::DefaultZoo();
  const fleet::FleetReport a = fleet::RunFleetMeanField(config, zoo);
  const fleet::FleetReport b = fleet::RunFleetMeanField(config, zoo);
  EXPECT_TRUE(fleet::FleetReportsBitIdentical(a, b));
}

}  // namespace
}  // namespace clover::sim
