// Tests for the core layer: schemes, the oracle profiler/selector, the
// controller's trigger logic, and harness calibration.
#include <gtest/gtest.h>

#include "carbon/trace_generator.h"
#include "common/units.h"
#include "core/controller.h"
#include "core/harness.h"
#include "core/oracle.h"
#include "core/schemes.h"
#include "perf/perf_model.h"
#include "sim/arrivals.h"

namespace clover::core {
namespace {

using models::Application;
using models::DefaultZoo;

TEST(Schemes, Names) {
  EXPECT_EQ(SchemeName(Scheme::kBase), "BASE");
  EXPECT_EQ(SchemeName(Scheme::kClover), "CLOVER");
  EXPECT_EQ(SchemeName(Scheme::kOracle), "ORACLE");
}

TEST(Oracle, ProfilesStandardizedSpace) {
  const double rate = sim::SizeArrivalRate(
      DefaultZoo(), Application::kClassification, 4, 0.75);
  Oracle oracle(&DefaultZoo(), Application::kClassification, 4, rate, 7);
  oracle.Profile(/*warmup_s=*/10.0, /*measure_s=*/20.0);
  // Space: per layout, a variant per distinct slice type; deduped. With 4
  // variants and <=3 types per layout this is dozens-to-hundreds.
  EXPECT_GE(oracle.entries().size(), 30u);
  EXPECT_LE(oracle.entries().size(), 1000u);
  EXPECT_GT(oracle.ProfilingTestbedHours(), 0.0);
}

TEST(Oracle, SelectionRespectsSlaAndFlipsWithIntensity) {
  const double rate = sim::SizeArrivalRate(
      DefaultZoo(), Application::kClassification, 4, 0.75);
  Oracle oracle(&DefaultZoo(), Application::kClassification, 4, rate, 7);
  oracle.Profile(10.0, 20.0);

  // Build params from the profiled BASE entry.
  graph::ConfigGraph base_graph(Application::kClassification, 4);
  base_graph.SetWeight(3, mig::SliceType::k7g, 4);
  const OracleEntry* base_entry = nullptr;
  for (const OracleEntry& entry : oracle.entries())
    if (entry.graph == base_graph) base_entry = &entry;
  ASSERT_NE(base_entry, nullptr);

  opt::ObjectiveParams params;
  params.lambda = 0.5;
  params.a_base = base_entry->metrics.accuracy;
  params.c_base_g = CarbonGrams(base_entry->metrics.energy_per_request_j,
                                250.0, 1.5);
  params.l_tail_ms = base_entry->metrics.p95_ms * 1.05;
  params.pue = 1.5;

  const OracleEntry& at_high = oracle.Select(params, 350.0);
  const OracleEntry& at_low = oracle.Select(params, 60.0);
  EXPECT_LE(at_high.metrics.p95_ms, params.l_tail_ms);
  EXPECT_LE(at_low.metrics.p95_ms, params.l_tail_ms);
  // High intensity pushes toward lower energy; low intensity toward higher
  // accuracy.
  EXPECT_LE(at_high.metrics.energy_per_request_j,
            at_low.metrics.energy_per_request_j + 1e-9);
  EXPECT_GE(at_low.metrics.accuracy, at_high.metrics.accuracy - 1e-9);
  // And the oracle never loses to BASE on its own objective.
  EXPECT_GE(opt::ObjectiveF(at_high.metrics, params, 350.0),
            opt::ObjectiveF(base_entry->metrics, params, 350.0) - 1e-9);
}

TEST(Harness, CalibrationDefinesSlaFromBase) {
  ExperimentHarness harness(&DefaultZoo());
  const BaselineCalibration& calibration = harness.Calibrate(
      Application::kClassification, 10, 0.75, std::nullopt, 5);
  const auto& family =
      DefaultZoo().ForApplication(Application::kClassification);
  const double service_ms = perf::PerfModel::LatencyMs(
      family, family.Largest(), mig::SliceType::k7g);
  // p95 of a 75%-utilized M/G/10 sits above the service floor but within a
  // small multiple of it.
  EXPECT_GT(calibration.l_tail_ms, service_ms);
  EXPECT_LT(calibration.l_tail_ms, service_ms * 3.0);
  EXPECT_NEAR(calibration.a_base, family.Largest().accuracy, 1e-6);
  EXPECT_GT(calibration.energy_per_request_j, 1.0);
  // Cached: same object returned.
  const BaselineCalibration& again = harness.Calibrate(
      Application::kClassification, 10, 0.75, std::nullopt, 5);
  EXPECT_EQ(&calibration, &again);
}

TEST(Controller, RunsInvocationOnTriggerAndCachesAcrossInvocations) {
  // A step trace: 200 then 300 then 300 — invocation at t=0-ish and at the
  // jump, none when flat.
  std::vector<double> values(48, 200.0);
  for (std::size_t i = 12; i < values.size(); ++i) values[i] = 300.0;
  carbon::CarbonTrace trace("step", 300.0, values);

  ExperimentHarness harness(&DefaultZoo());
  const BaselineCalibration& calibration = harness.Calibrate(
      Application::kClassification, 4, 0.75, std::nullopt, 5);

  opt::ObjectiveParams params;
  params.lambda = 0.5;
  params.a_base = calibration.a_base;
  params.c_base_g =
      CarbonGrams(calibration.energy_per_request_j, 250.0, 1.5);
  params.l_tail_ms = calibration.l_tail_ms;

  sim::SimOptions sim_options;
  sim_options.arrival_rate_qps = calibration.arrival_rate_qps;
  sim_options.window_seconds = 300.0;
  sim_options.seed = 5;
  serving::Deployment base =
      serving::MakeBase(Application::kClassification, 4);
  sim::ClusterSim sim(base, DefaultZoo(), &trace, sim_options);

  Controller::Options options;
  options.scheme = Scheme::kClover;
  options.seed = 5;
  options.measure_window_s = 15.0;
  Controller controller(&sim, &DefaultZoo(), &trace, params, options);

  int invocations = 0;
  for (double t = 300.0; t <= 4 * 3600.0; t += 300.0) {
    if (t > sim.now()) sim.AdvanceTo(t);
    if (controller.Step().has_value()) ++invocations;
  }
  // Exactly two triggers: the cold start and the 200->300 jump.
  EXPECT_EQ(invocations, 2);
  ASSERT_EQ(controller.history().size(), 2u);
  EXPECT_GT(controller.history()[0].search.evaluations.size(), 1u);
  EXPECT_GT(controller.total_optimization_seconds(), 0.0);
  // The second invocation warm-starts from what invocation I deployed: its
  // winner when that was SLA-compliant and capacity-safe, else the
  // compliant fallback. Either way the warm-start graph must be the
  // cluster's deployed configuration at the time.
  const auto& first = controller.history()[0];
  const auto& second = controller.history()[1];
  const bool first_winner_safe =
      first.search.best_sla_ok &&
      graph::NominalCapacityQps(first.search.best, DefaultZoo()) >=
          1.1 * sim_options.arrival_rate_qps;
  if (first_winner_safe) {
    EXPECT_TRUE(second.search.evaluations.front().graph ==
                first.search.best);
  }
}

}  // namespace
}  // namespace clover::core
