// Tests for the live front-end's wire layer: the length-prefixed frame
// codec (round trips, arbitrary chunking, poisoning on malformed input)
// and the epoll reactor (accept/read/write over real loopback sockets,
// cross-thread Send, clean shutdown).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "net/epoll_server.h"
#include "net/frame.h"

namespace clover::net {
namespace {

TEST(FrameCodec, RequestRoundTrip) {
  std::vector<std::uint8_t> wire;
  AppendRequest(&wire, {.request_id = 42, .virtual_ts_s = 1234.5625});
  EXPECT_EQ(wire.size(), kRequestFrameBytes);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  const std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(frame->request.request_id, 42u);
  EXPECT_DOUBLE_EQ(frame->request.virtual_ts_s, 1234.5625);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  EXPECT_FALSE(decoder.error());
}

TEST(FrameCodec, ResponseRoundTripAllStatuses) {
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kShedRate,
        ResponseStatus::kShedQueue}) {
    std::vector<std::uint8_t> wire;
    AppendResponse(&wire, {.request_id = 7,
                           .status = status,
                           .latency_virtual_ms = 33.25,
                           .accuracy = 84.4});
    EXPECT_EQ(wire.size(), kResponseFrameBytes);
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    const std::optional<Frame> frame = decoder.Next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kResponse);
    EXPECT_EQ(frame->response.request_id, 7u);
    EXPECT_EQ(frame->response.status, status);
    EXPECT_DOUBLE_EQ(frame->response.latency_virtual_ms, 33.25);
    EXPECT_DOUBLE_EQ(frame->response.accuracy, 84.4);
  }
}

TEST(FrameCodec, BeaconRoundTrip) {
  std::vector<std::uint8_t> wire;
  AppendClockBeacon(&wire, {.virtual_ts_s = 7200.0});
  EXPECT_EQ(wire.size(), kClockBeaconFrameBytes);
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  const std::optional<Frame> frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kClockBeacon);
  EXPECT_DOUBLE_EQ(frame->beacon.virtual_ts_s, 7200.0);
}

TEST(FrameCodec, ByteAtATimeChunkingYieldsIdenticalFrames) {
  // The decoder must be insensitive to read() boundaries: feeding the
  // stream one byte at a time yields the same frames as one big feed.
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < 10; ++i) {
    AppendRequest(&wire, {.request_id = i, .virtual_ts_s = 0.125 * double(i)});
    AppendResponse(&wire, {.request_id = i,
                           .status = ResponseStatus::kOk,
                           .latency_virtual_ms = double(i),
                           .accuracy = 80.0});
  }
  AppendClockBeacon(&wire, {.virtual_ts_s = 99.0});

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : wire) {
    decoder.Feed(&byte, 1);
    while (const std::optional<Frame> frame = decoder.Next())
      frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 21u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(frames[2 * i].type, FrameType::kRequest);
    EXPECT_EQ(frames[2 * i].request.request_id, i);
    EXPECT_EQ(frames[2 * i + 1].type, FrameType::kResponse);
    EXPECT_EQ(frames[2 * i + 1].response.request_id, i);
  }
  EXPECT_EQ(frames.back().type, FrameType::kClockBeacon);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodec, OversizedLengthPoisonsDecoder) {
  // A length prefix above kMaxPayloadBytes is a desynchronized stream, not
  // a frame to wait for.
  std::uint32_t huge = 1u << 20;
  std::uint8_t wire[kFrameHeaderBytes];
  std::memcpy(wire, &huge, sizeof(huge));
  FrameDecoder decoder;
  decoder.Feed(wire, sizeof(wire));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.error());
  // Poisoned: further valid input stays rejected.
  std::vector<std::uint8_t> valid;
  AppendClockBeacon(&valid, {.virtual_ts_s = 1.0});
  decoder.Feed(valid.data(), valid.size());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.error());
}

TEST(FrameCodec, UnknownTypePoisonsDecoder) {
  std::vector<std::uint8_t> wire;
  AppendClockBeacon(&wire, {.virtual_ts_s = 1.0});
  wire[kFrameHeaderBytes] = 0x7f;  // clobber the type tag
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.error());
}

TEST(FrameCodec, LengthTypeMismatchPoisonsDecoder) {
  // A request tag with a beacon-sized payload cannot decode.
  std::vector<std::uint8_t> wire;
  AppendClockBeacon(&wire, {.virtual_ts_s = 1.0});
  wire[kFrameHeaderBytes] = static_cast<std::uint8_t>(FrameType::kRequest);
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.error());
}

// --- Epoll reactor over real loopback sockets ---

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void WriteAll(int fd, const std::vector<std::uint8_t>& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

TEST(EpollServer, EchoesResponsesAcrossThreads) {
  // Server answers every request with a response carrying the same id;
  // Send() runs from a different thread than Poll(), exercising the
  // eventfd wake path.
  EpollServer* server_ptr = nullptr;
  EpollServer server(
      EpollServerOptions{},
      [&](int conn_id, const Frame& frame) {
        ASSERT_EQ(frame.type, FrameType::kRequest);
        std::vector<std::uint8_t> out;
        AppendResponse(&out, {.request_id = frame.request.request_id,
                              .status = ResponseStatus::kOk,
                              .latency_virtual_ms = 1.0,
                              .accuracy = 80.0});
        std::thread([server_ptr, conn_id, out] {
          EXPECT_TRUE(server_ptr->Send(conn_id, out.data(), out.size()));
        }).join();
      },
      nullptr);
  server_ptr = &server;
  const std::uint16_t port = server.Listen();

  std::atomic<bool> stop{false};
  std::thread reactor([&] {
    while (!stop.load(std::memory_order_relaxed)) server.Poll(10);
  });

  const int fd = ConnectLoopback(port);
  constexpr std::uint64_t kRequests = 200;
  std::vector<std::uint8_t> out;
  for (std::uint64_t i = 0; i < kRequests; ++i)
    AppendRequest(&out, {.request_id = i, .virtual_ts_s = double(i)});
  WriteAll(fd, out);

  // Blocking reads until every response arrived.
  FrameDecoder decoder;
  std::uint64_t seen = 0;
  std::uint8_t buf[4096];
  std::vector<bool> got(kRequests, false);
  while (seen < kRequests) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    decoder.Feed(buf, static_cast<std::size_t>(n));
    while (const std::optional<Frame> frame = decoder.Next()) {
      ASSERT_EQ(frame->type, FrameType::kResponse);
      ASSERT_LT(frame->response.request_id, kRequests);
      EXPECT_FALSE(got[frame->response.request_id]);
      got[frame->response.request_id] = true;
      ++seen;
    }
  }
  ::close(fd);

  stop.store(true);
  server.Wake();
  reactor.join();
  server.Shutdown();
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_EQ(server.accepted_total(), 1u);
}

TEST(EpollServer, DecodeErrorClosesOnlyTheBadConnection) {
  std::atomic<int> closed{0};
  EpollServer server(
      EpollServerOptions{}, [](int, const Frame&) {},
      [&](int) { closed.fetch_add(1); });
  const std::uint16_t port = server.Listen();

  const int good = ConnectLoopback(port);
  const int bad = ConnectLoopback(port);
  // Drive the reactor from this thread; no traffic yet.
  while (server.open_connections() < 2) server.Poll(10);

  const std::vector<std::uint8_t> garbage(16, 0xee);
  WriteAll(bad, garbage);
  while (server.open_connections() > 1) server.Poll(10);
  EXPECT_EQ(closed.load(), 1);

  // The good connection still works end to end.
  std::vector<std::uint8_t> ok;
  AppendClockBeacon(&ok, {.virtual_ts_s = 5.0});
  WriteAll(good, ok);
  // One more poll round delivers the beacon without killing the conn.
  server.Poll(50);
  EXPECT_EQ(server.open_connections(), 1u);
  ::close(good);
  ::close(bad);
  server.Shutdown();
  EXPECT_EQ(closed.load(), 2);
}

TEST(EpollServer, ShutdownClosesEverythingAndIsIdempotent) {
  EpollServer server(EpollServerOptions{}, [](int, const Frame&) {}, nullptr);
  const std::uint16_t port = server.Listen();
  const int fd = ConnectLoopback(port);
  while (server.open_connections() < 1) server.Poll(10);
  server.Shutdown();
  EXPECT_EQ(server.open_connections(), 0u);
  server.Shutdown();  // idempotent
  ::close(fd);
}

}  // namespace
}  // namespace clover::net
