// The live-vs-simulated parity gate (docs/TESTING.md, "Live vs simulated
// parity"): the same trace pushed through the simulated path
// (ExperimentHarness::Run) and through the live loopback path
// (core/live_service.h — real epoll sockets, admission, batching, worker
// threads) must produce
//
//   * bit-identical control decisions — the live control plane's twin
//     report passes RunReportsBitIdentical against the harness report,
//     and every optimizer invocation passes SearchResultsBitIdentical;
//   * bit-identical results at 1 and 8 worker threads — thread count can
//     parallelize response encoding but never the decision sequence;
//   * latency summaries within documented tolerance — exact for BASE with
//     service jitter pinned to 0 (both substrates then compute the same
//     deterministic G/D/c system over the same arrivals), and within a
//     bounded relative gap for CLOVER, whose twin serves the controller's
//     probe configurations during optimization windows while the live
//     executor keeps the last committed deployment;
//   * bit-identical router weights when the fleet layer consumes the live
//     snapshot (fleet/live_feed.h) instead of a simulated region.
//
// Admission is configured unlimited and queue-depth shedding off: the
// depth signal is wall-coupled load protection, not part of the
// replayable decision sequence, and a differential run must serve the
// full schedule.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "carbon/trace.h"
#include "common/units.h"
#include "core/live_service.h"
#include "fleet/live_feed.h"
#include "fleet/router.h"
#include "opt/annealing.h"

namespace clover::core {
namespace {

bool DeploymentsEqual(const serving::Deployment& a,
                      const serving::Deployment& b) {
  const std::vector<serving::InstanceSpec> sa = a.Instances();
  const std::vector<serving::InstanceSpec> sb = b.Instances();
  if (a.app != b.app || sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].gpu_index != sb[i].gpu_index ||
        sa[i].slice_index != sb[i].slice_index ||
        sa[i].slice != sb[i].slice ||
        sa[i].variant_ordinal != sb[i].variant_ordinal)
      return false;
  }
  return true;
}

void ExpectLiveRunsBitIdentical(const LiveRunResult& a,
                                const LiveRunResult& b) {
  EXPECT_TRUE(RunReportsBitIdentical(a.twin_report, b.twin_report));
  // Live latency accounting: exactly equal, not just close.
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.p50_virtual_ms, b.stats.p50_virtual_ms);
  EXPECT_EQ(a.stats.p99_virtual_ms, b.stats.p99_virtual_ms);
  EXPECT_EQ(a.stats.mean_virtual_ms, b.stats.mean_virtual_ms);
  EXPECT_EQ(a.stats.mean_accuracy, b.stats.mean_accuracy);
  // The committed deployment sequence.
  ASSERT_EQ(a.commits.size(), b.commits.size());
  for (std::size_t i = 0; i < a.commits.size(); ++i) {
    EXPECT_EQ(a.commits[i].boundary_s, b.commits[i].boundary_s);
    EXPECT_EQ(a.commits[i].ready_s, b.commits[i].ready_s);
    EXPECT_TRUE(
        DeploymentsEqual(a.commits[i].deployment, b.commits[i].deployment));
  }
  // Every optimizer invocation, decision for decision.
  ASSERT_EQ(a.optimizations.size(), b.optimizations.size());
  for (std::size_t i = 0; i < a.optimizations.size(); ++i)
    EXPECT_TRUE(opt::SearchResultsBitIdentical(
        a.optimizations[i].search, b.optimizations[i].search));
}

TEST(LiveDifferential, BaseControlAndLatenciesMatchSimulatedExactly) {
  // BASE, jitter pinned to 0: both substrates run the same deterministic
  // service process over the same Poisson arrivals, so not only the
  // control decisions (trivially — BASE never reconfigures) but the
  // latency quantiles themselves must agree bin for bin.
  const carbon::CarbonTrace trace("flat", 3600.0, {250.0, 250.0});
  ExperimentConfig config;
  config.scheme = Scheme::kBase;
  config.trace = &trace;
  config.duration_hours = 0.25;
  config.num_gpus = config.sizing_gpus = 2;
  config.seed = 3;
  config.service_jitter_sigma = 0.0;

  ExperimentHarness harness(&models::DefaultZoo());
  const RunReport simulated = harness.Run(config);

  LiveRunOptions options;
  options.worker_threads = 1;
  const LiveRunResult live =
      RunLiveExperiment(&harness, &models::DefaultZoo(), config, options);

  EXPECT_TRUE(live.replay.all_acked);
  EXPECT_EQ(live.replay.shed(), 0u);
  EXPECT_TRUE(RunReportsBitIdentical(live.twin_report, simulated));
  EXPECT_TRUE(live.commits.empty());

  // The replay schedule and the sim's internal stream are the same draw:
  // arrival counts agree exactly. Completions differ by the cutoff rule —
  // the sim stops the clock at `duration` with the final arrivals still
  // in flight, while the live server answers everything it admitted — so
  // live completes the full schedule.
  EXPECT_EQ(live.replay.sent, simulated.arrivals);
  EXPECT_EQ(live.stats.completed, live.replay.sent);
  EXPECT_GE(live.stats.completed, simulated.completions);

  // Documented tolerance, BASE: none. Same arrivals, same deterministic
  // service times, same dispatch rule, same histogram geometry.
  EXPECT_EQ(live.stats.p50_virtual_ms, simulated.overall_p50_ms);
  EXPECT_EQ(live.stats.p99_virtual_ms, simulated.overall_p99_ms);
}

TEST(LiveDifferential, CloverControlDecisionsBitIdenticalAt1And8Workers) {
  // CLOVER over a stepping trace: the controller optimizes on the carbon
  // swings and commits reconfigurations; the live path must reproduce the
  // harness's decision sequence exactly, at any worker count.
  const carbon::CarbonTrace trace("step", 600.0,
                                  {120.0, 320.0, 120.0, 320.0});
  ExperimentConfig config;
  config.scheme = Scheme::kClover;
  config.trace = &trace;
  config.duration_hours = 0.5;
  config.num_gpus = config.sizing_gpus = 2;
  config.seed = 5;
  config.service_jitter_sigma = 0.0;

  ExperimentHarness harness(&models::DefaultZoo());
  const RunReport simulated = harness.Run(config);
  ASSERT_FALSE(simulated.optimizations.empty());

  auto run_live = [&](std::size_t workers) {
    LiveRunOptions options;
    options.worker_threads = workers;
    return RunLiveExperiment(&harness, &models::DefaultZoo(), config,
                             options);
  };
  const LiveRunResult live1 = run_live(1);
  const LiveRunResult live8 = run_live(8);

  EXPECT_TRUE(live1.replay.all_acked);
  EXPECT_TRUE(live8.replay.all_acked);

  // Live vs simulated: the twin's decisions are the harness's decisions.
  EXPECT_TRUE(RunReportsBitIdentical(live1.twin_report, simulated));
  EXPECT_TRUE(RunReportsBitIdentical(live8.twin_report, simulated));
  ASSERT_EQ(live1.optimizations.size(), simulated.optimizations.size());
  for (std::size_t i = 0; i < live1.optimizations.size(); ++i)
    EXPECT_TRUE(opt::SearchResultsBitIdentical(
        live1.optimizations[i].search, simulated.optimizations[i].search));

  // 1 worker vs 8 workers: everything, bit for bit.
  ExpectLiveRunsBitIdentical(live1, live8);

  // Documented tolerance, CLOVER: the twin serves the controller's probe
  // configurations during optimization windows (a live cluster cannot
  // time-travel through candidates), and saturated probes put multi-
  // second latencies into the simulated tail that the live path — which
  // keeps serving the last committed deployment — never experiences. The
  // median sits outside the probe windows on both paths, so it agrees to
  // 25% relative; the tail claim is one-sided: live p99 can only be
  // better than the probe-tainted simulated p99.
  EXPECT_GT(live1.stats.p50_virtual_ms, 0.0);
  EXPECT_NEAR(live1.stats.p50_virtual_ms, simulated.overall_p50_ms,
              0.25 * simulated.overall_p50_ms);
  EXPECT_GT(live1.stats.p99_virtual_ms, 0.0);
  EXPECT_LE(live1.stats.p99_virtual_ms,
            simulated.overall_p99_ms * 1.25);

  // The fleet layer on live snapshots: equal stats must produce
  // bit-identical router weights — routing is a pure function of the
  // snapshot, so the live region and its twin steer the fleet the same.
  fleet::LiveRegionInputs inputs;
  inputs.name = "live-region";
  inputs.ci = 120.0;
  inputs.capacity_qps = live1.twin_report.arrival_rate_qps * 1.5;
  inputs.latency_penalty_ms = 20.0;
  inputs.window_s = HoursToSeconds(config.duration_hours);
  const fleet::RegionSnapshot snap1 =
      fleet::SnapshotFromLive(live1.stats, inputs);
  const fleet::RegionSnapshot snap8 =
      fleet::SnapshotFromLive(live8.stats, inputs);
  fleet::RegionSnapshot other = snap1;
  other.name = "sim-region";
  other.ci = 320.0;
  const std::unique_ptr<fleet::Router> router =
      fleet::MakeRouter(fleet::RouterPolicy::kCarbonGreedy);
  const std::vector<double> weights1 =
      router->Split({snap1, other}, inputs.capacity_qps, {});
  const std::vector<double> weights8 =
      router->Split({snap8, other}, inputs.capacity_qps, {});
  ASSERT_EQ(weights1.size(), weights8.size());
  for (std::size_t i = 0; i < weights1.size(); ++i)
    EXPECT_EQ(weights1[i], weights8[i]);
}

TEST(LiveDifferential, MultiConnectionReplayPreservesControlDecisions) {
  // Interleaving the schedule across 4 client connections makes socket-
  // level arrival order nondeterministic, and a straggler that lands past
  // a batch-flush boundary can shift individual executor outcomes — but
  // the control plane keys off the high-water virtual clock, which only
  // moves forward, so the boundary/decision sequence (and therefore the
  // twin report) must not move. Accounting conservation must hold too:
  // every request is answered exactly once.
  const carbon::CarbonTrace trace("flat", 3600.0, {250.0, 250.0});
  ExperimentConfig config;
  config.scheme = Scheme::kClover;
  config.trace = &trace;
  config.duration_hours = 0.25;
  config.num_gpus = config.sizing_gpus = 2;
  config.seed = 7;
  config.service_jitter_sigma = 0.0;

  ExperimentHarness harness(&models::DefaultZoo());
  auto run_live = [&](int connections) {
    LiveRunOptions options;
    options.worker_threads = 2;
    options.connections = connections;
    return RunLiveExperiment(&harness, &models::DefaultZoo(), config,
                             options);
  };
  const LiveRunResult one = run_live(1);
  const LiveRunResult four = run_live(4);
  EXPECT_TRUE(one.replay.all_acked);
  EXPECT_TRUE(four.replay.all_acked);
  EXPECT_TRUE(RunReportsBitIdentical(one.twin_report, four.twin_report));
  EXPECT_EQ(one.stats.completed, four.stats.completed);
  EXPECT_EQ(four.replay.sent, four.replay.ok + four.replay.shed());
}

}  // namespace
}  // namespace clover::core
