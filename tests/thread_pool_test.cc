// common/thread_pool.h: ordering/coverage, slot exclusivity, exception
// propagation (Submit futures and ParallelFor's lowest-index rule), and
// shutdown draining.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace clover {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](int, std::size_t index) {
    visits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForSlotsAreMutuallyExclusive) {
  ThreadPool pool(4);
  // Two tasks carrying the same slot index must never overlap in time —
  // that is the guarantee per-slot state (RNGs, simulator replicas) rests
  // on. Entering a slot that is already occupied trips the flag.
  std::vector<std::atomic<int>> occupancy(4);
  std::atomic<bool> overlapped{false};
  pool.ParallelFor(512, [&](int slot, std::size_t) {
    const auto s = static_cast<std::size_t>(slot);
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 4);
    if (occupancy[s].fetch_add(1, std::memory_order_acq_rel) != 0)
      overlapped.store(true, std::memory_order_relaxed);
    occupancy[s].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestThrowingIndex) {
  ThreadPool pool(4);
  // Indices 7 and 100 both throw; the rule is "lowest index wins", which
  // keeps the observed error independent of scheduling and thread count.
  auto run = [&] {
    pool.ParallelFor(512, [&](int, std::size_t index) {
      if (index == 7 || index == 100)
        throw std::runtime_error("index-" + std::to_string(index));
    });
  };
  try {
    run();
    FAIL() << "expected ParallelFor to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "index-7");
  }
  // Non-throwing indices all still ran (errors don't cancel the batch).
}

TEST(ThreadPoolTest, ParallelForKeepsRunningAfterAnError) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 300;
  std::vector<std::atomic<int>> visits(kN);
  EXPECT_THROW(pool.ParallelFor(kN,
                                [&](int, std::size_t index) {
                                  visits[index].fetch_add(1);
                                  if (index == 0)
                                    throw std::runtime_error("early");
                                }),
               std::runtime_error);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i)
      pool.Submit([&] { completed.fetch_add(1, std::memory_order_relaxed); });
    // No explicit wait: the destructor must run every queued task.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

}  // namespace
}  // namespace clover
