// Tests for the observability layer (src/obs): sharded metric folds vs a
// serial reference at several writer-thread counts, snapshot determinism
// across thread counts, tracer ring wraparound, and a seeded property test
// that dumped traces are always well-formed (matched B/E pairs, monotone
// timestamps per lane) no matter how spans nest or wrap.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/quantile.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/proptest.h"

namespace clover::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Get().ResetForTest();
    Tracer::Get().ResetForTest();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    Tracer::Get().ResetForTest();
    Registry::Get().ResetForTest();
  }
};

// Deterministic per-item workload, independent of which thread runs it.
std::uint64_t ItemWeight(std::size_t i) { return i % 7 + 1; }
double ItemValue(std::size_t i) {
  return 0.1 + static_cast<double>(i % 200) * 1.7;
}

TEST_F(ObsTest, FoldEqualsSerialReferenceAtSeveralThreadCounts) {
  constexpr std::size_t kItems = 5000;

  std::uint64_t expected_count = 0;
  LogHistogramQuantile expected_hist;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected_count += ItemWeight(i);
    expected_hist.Add(ItemValue(i));
  }

  for (const int threads : {1, 2, 8}) {
    Registry::Get().ResetForTest();
    Counter* counter = Registry::Get().GetCounter("test.count");
    Histogram* hist = Registry::Get().GetHistogram("test.hist");
    ThreadPool pool(threads);
    pool.ParallelFor(kItems, [&](int /*slot*/, std::size_t i) {
      counter->Add(ItemWeight(i));
      hist->Observe(ItemValue(i));
    });

    EXPECT_EQ(counter->Fold(), expected_count) << threads << " threads";
    EXPECT_EQ(hist->FoldCount(), kItems) << threads << " threads";
    // The fold rebuilds the serial histogram bit for bit: same bins, same
    // quantiles, regardless of which shard each observation landed in.
    const LogHistogramQuantile folded = hist->Fold();
    for (const double q : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(folded.Quantile(q), expected_hist.Quantile(q))
          << threads << " threads, q=" << q;
    }
  }
}

TEST_F(ObsTest, GaugeFoldIsLastWriteForSingleWriter) {
  Gauge* gauge = Registry::Get().GetGauge("test.gauge");
  gauge->Set(1.5);
  gauge->Set(-3.25);
  gauge->Set(42.0);
  EXPECT_EQ(gauge->Fold(), 42.0);
}

// The snapshot rows a run records must be a function of the seeded work,
// not of the thread count — the property that lets instrumented benches
// keep their bit-identity gates.
TEST_F(ObsTest, SnapshotRowsAreIdenticalAcrossThreadCounts) {
  constexpr std::size_t kItems = 512;
  constexpr int kRounds = 5;

  using Rows = std::vector<std::tuple<std::string, int, std::uint64_t,
                                      double, double>>;
  auto run = [&](int threads) {
    Registry::Get().ResetForTest();
    Counter* counter = Registry::Get().GetCounter("snap.count");
    Histogram* hist = Registry::Get().GetHistogram("snap.hist");
    ThreadPool pool(threads);
    for (int round = 0; round < kRounds; ++round) {
      pool.ParallelFor(kItems, [&](int /*slot*/, std::size_t i) {
        counter->Add(ItemWeight(i));
        hist->Observe(ItemValue(i + static_cast<std::size_t>(round)));
      });
      // ParallelFor joined: a barrier, the only place Sample is allowed.
      Registry::Get().Sample(static_cast<double>(round));
    }
    Rows rows;
    for (const Snapshot& snap : Registry::Get().Snapshots()) {
      for (const SnapshotRow& row : snap.rows) {
        // Other tests in this process may have registered metrics of their
        // own (registrations persist across ResetForTest); compare only
        // this test's rows.
        if (row.name.rfind("snap.", 0) != 0) continue;
        rows.emplace_back(row.name, static_cast<int>(row.kind), row.count,
                          row.p50, row.p99);
      }
    }
    return rows;
  };

  const Rows serial = run(1);
  EXPECT_EQ(serial.size(), static_cast<std::size_t>(kRounds) * 2);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST_F(ObsTest, DisabledMacrosRecordNothing) {
  SetEnabled(false);
  CLOVER_OBS_COUNT("guard.count", 5);
  CLOVER_OBS_OBSERVE("guard.hist", 1.0);
  SetEnabled(true);
  // The names were never registered (ResetForTest zeroes values but keeps
  // registrations from earlier tests in this process, so check by name).
  for (const SnapshotRow& row : Registry::Get().Fold(0.0).rows) {
    EXPECT_NE(row.name, "guard.count");
    EXPECT_NE(row.name, "guard.hist");
  }
}

TEST_F(ObsTest, SnapshotLogIsBoundedAndReportsDrops) {
  Registry::Get().GetCounter("bound.count")->Add(1);
  const std::size_t extra = 10;
  for (std::size_t i = 0; i < Registry::kMaxSnapshots + extra; ++i)
    Registry::Get().Sample(static_cast<double>(i));
  EXPECT_EQ(Registry::Get().Snapshots().size(), Registry::kMaxSnapshots);
  EXPECT_EQ(Registry::Get().SnapshotsDropped(), extra);
  // The survivors are the newest (flight-recorder semantics).
  EXPECT_EQ(Registry::Get().Snapshots().front().ts_s,
            static_cast<double>(extra));
}

// Shared verifier: parse a dumped trace and check the invariants the
// validator script enforces in CI (scripts/validate_trace_json.py).
std::optional<std::string> CheckTraceWellFormed(const std::string& path) {
  const JsonValue doc = ParseJsonFile(path);
  const JsonValue& events = doc.At("traceEvents");
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts;
  std::map<std::pair<std::int64_t, std::int64_t>, int> open_b;
  for (const JsonValue& e : events.AsArray()) {
    const std::string& phase = e.At("ph").AsString();
    if (e.At("name").AsString().empty()) return "empty event name";
    if (phase == "M") continue;
    const std::pair<std::int64_t, std::int64_t> lane = {
        e.At("pid").AsInt(), e.At("tid").AsInt()};
    const double ts = e.At("ts").AsNumber();
    const auto it = last_ts.find(lane);
    if (it != last_ts.end() && ts < it->second) {
      std::ostringstream os;
      os << "non-monotone ts on pid=" << lane.first
         << " tid=" << lane.second << ": " << ts << " < " << it->second;
      return os.str();
    }
    last_ts[lane] = ts;
    if (phase == "B") {
      ++open_b[lane];
    } else if (phase == "E") {
      if (--open_b[lane] < 0) return "E without matching B";
    } else if (phase == "X") {
      if (e.At("dur").AsNumber() < 0.0) return "negative X dur";
    } else if (phase != "I") {
      return "unexpected phase " + phase;
    }
  }
  for (const auto& [lane, open] : open_b) {
    if (open != 0) return "unclosed B events in dump";
  }
  return std::nullopt;
}

TEST_F(ObsTest, TracerRingWraparoundDropsOldestAndStaysWellFormed) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(/*ring_capacity=*/16);
  constexpr std::size_t kEmitted = 100;
  for (std::size_t i = 0; i < kEmitted; ++i) tracer.InstantWall("tick");
  // An unclosed span on top of the wrapped ring: the sanitizer must drop
  // the trailing B rather than emit an unmatched pair.
  tracer.Emit("open", 'B', TraceClock::kWall, tracer.WallNow());

  const std::string path =
      ::testing::TempDir() + "/obs_wrap_trace.json";
  const Tracer::DumpStats stats = tracer.WriteChromeTrace(path);
  EXPECT_EQ(stats.dropped, kEmitted + 1 - 16);
  EXPECT_EQ(stats.written, 15u);  // 16 kept minus the sanitized open B
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(CheckTraceWellFormed(path), std::nullopt);
}

TEST_F(ObsTest, VirtualTimelineRestartSplitsOntoFreshLane) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  // Two virtual passes over [0, 10]: a run and its twin. The regression at
  // the restart must land on a synthetic tid, keeping every lane monotone.
  for (int pass = 0; pass < 2; ++pass) {
    tracer.CompleteVirtual("epoch", 0.0, 5.0);
    tracer.CompleteVirtual("epoch", 5.0, 10.0);
  }
  const std::string path =
      ::testing::TempDir() + "/obs_virtual_trace.json";
  const Tracer::DumpStats stats = tracer.WriteChromeTrace(path);
  EXPECT_EQ(stats.written, 4u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(CheckTraceWellFormed(path), std::nullopt);
}

// Property: whatever deterministic mix of nested spans, instants and
// virtual intervals a thread emits — including rings far too small for the
// event count — the dumped trace is well-formed.
struct SpanScript {
  std::size_t ring_capacity = 8;
  // op % 3 == 0: balanced span of depth (op % 4 + 1); 1: wall instant;
  // 2: virtual interval (restarting timeline every 5th).
  std::vector<int> ops;
};

void RunScript(const SpanScript& script) {
  Tracer& tracer = Tracer::Get();
  tracer.ResetForTest();
  tracer.Enable(script.ring_capacity);
  int virtual_cursor = 0;
  for (const int op : script.ops) {
    switch (op % 3) {
      case 0: {
        const int depth = op % 4 + 1;
        std::vector<std::unique_ptr<ScopedSpan>> nest;
        for (int d = 0; d < depth; ++d)
          nest.push_back(std::make_unique<ScopedSpan>("nested"));
        break;  // nest unwinds: E events in LIFO order
      }
      case 1:
        tracer.InstantWall("mark");
        break;
      default: {
        const double t0 = static_cast<double>(virtual_cursor % 5);
        tracer.CompleteVirtual("vspan", t0, t0 + 0.5);
        ++virtual_cursor;
        break;
      }
    }
  }
}

TEST_F(ObsTest, PropSpanNestingAlwaysDumpsWellFormed) {
  using clover::testing::prop::Check;
  using clover::testing::prop::Config;
  using clover::testing::prop::Domain;
  using clover::testing::prop::Gen;

  Domain<SpanScript> domain;
  domain.generate = [](Gen& gen) {
    SpanScript script;
    script.ring_capacity =
        static_cast<std::size_t>(gen.IntInRange(8, 64));
    const std::int64_t n = gen.IntInRange(0, 200);
    script.ops.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      script.ops.push_back(static_cast<int>(gen.IntInRange(0, 11)));
    return script;
  };
  domain.shrink = [](const SpanScript& script) {
    std::vector<SpanScript> simpler;
    if (!script.ops.empty()) {
      SpanScript half = script;
      half.ops.resize(script.ops.size() / 2);
      simpler.push_back(std::move(half));
      SpanScript tail = script;
      tail.ops.erase(tail.ops.begin());
      simpler.push_back(std::move(tail));
    }
    return simpler;
  };
  domain.describe = [](const SpanScript& script) {
    std::ostringstream os;
    os << "capacity=" << script.ring_capacity << " ops=[";
    for (const int op : script.ops) os << op << ",";
    os << "]";
    return os.str();
  };

  Config config;
  config.name = "trace-dump-well-formed";
  config.seed = 11;
  config.iterations = 40;
  const std::string path =
      ::testing::TempDir() + "/obs_prop_trace.json";
  const auto outcome = Check<SpanScript>(
      config, domain,
      [&](const SpanScript& script) -> std::optional<std::string> {
        RunScript(script);
        Tracer::Get().WriteChromeTrace(path);
        return CheckTraceWellFormed(path);
      });
  EXPECT_TRUE(outcome.passed) << outcome.report;
}

}  // namespace
}  // namespace clover::obs
