// Unit gates for the simulator hot-path machinery: the bump arena, the
// SoA event queue, batched Poisson arrival draws, the table-driven
// histogram bin map, and the ziggurat gaussian. Each of these replaced a
// slower-but-obviously-correct implementation; the tests here pin the
// replacement to its reference so future tuning cannot silently change
// simulation results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/arena.h"
#include "common/quantile.h"
#include "common/rng.h"
#include "common/units.h"
#include "carbon/trace.h"
#include "models/zoo.h"
#include "serving/deployment.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"
#include "sim/event_queue.h"

namespace clover {
namespace {

// ---- Arena ----------------------------------------------------------------

TEST(ArenaTest, AlignsAndBumps) {
  Arena arena(256);
  auto* a = arena.AllocateArray<std::uint8_t>(3);
  auto* b = arena.AllocateArray<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_GE(arena.bytes_used(), 3 + 4 * sizeof(double));
}

TEST(ArenaTest, ResetReusesTheSameMemory) {
  Arena arena(1024);
  void* first = arena.Allocate(100);
  arena.Allocate(200);
  const std::size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Steady state: the window after Reset allocates from block 0 again
  // without growing the backing storage.
  void* again = arena.Allocate(100);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(64);
  const std::size_t blocks_before = arena.num_blocks();
  void* big = arena.Allocate(10000);
  EXPECT_NE(big, nullptr);
  EXPECT_GT(arena.num_blocks(), blocks_before);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

// ---- SoA event queue ------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrderAgainstReferenceHeap) {
  sim::EventQueue queue;
  std::priority_queue<double, std::vector<double>, std::greater<>> reference;
  RngStream rng(42, "event-queue-test");
  // Interleaved pushes and pops, including duplicate timestamps.
  for (int round = 0; round < 2000; ++round) {
    const int pushes = static_cast<int>(rng.Next() % 4);
    for (int i = 0; i < pushes; ++i) {
      const double t = std::floor(rng.NextDouble() * 1000.0) / 16.0;
      queue.Push({t, static_cast<std::int32_t>(round), 0.0});
      reference.push(t);
    }
    if (!queue.Empty() && (rng.Next() & 1) != 0u) {
      EXPECT_EQ(queue.TopTime(), reference.top());
      EXPECT_EQ(queue.Pop().time, reference.top());
      reference.pop();
    }
  }
  while (!queue.Empty()) {
    EXPECT_EQ(queue.Pop().time, reference.top());
    reference.pop();
  }
  EXPECT_TRUE(reference.empty());
}

// ---- Batched Poisson arrivals ---------------------------------------------

// The batch contract (sim/arrivals.h kGapBatchSize): pre-drawing unit
// gaps and dividing at consumption time is bit-identical to the lazy
// scalar NextExponential(rate) sequence — across batch-refill boundaries
// and across ResetRate, which changes the divisor mid-batch.
TEST(PoissonArrivalsTest, BatchedDrawsMatchScalarReference) {
  const std::uint64_t seed = 7;
  const double rate = 120.0;
  sim::PoissonArrivals arrivals(rate, seed);
  RngStream reference_rng(seed, "poisson-arrivals");
  double t = 0.0;
  // 3.5 batches worth, so two refill boundaries are crossed.
  for (int i = 0; i < 900; ++i) {
    t += reference_rng.NextUnitExponential() / rate;
    ASSERT_DOUBLE_EQ(arrivals.NextArrivalTime(), t) << "arrival " << i;
  }
}

TEST(PoissonArrivalsTest, ResetRateStaysBitIdenticalToScalarReference) {
  const std::uint64_t seed = 11;
  sim::PoissonArrivals arrivals(100.0, seed);
  RngStream reference_rng(seed, "poisson-arrivals");
  double t = 0.0;
  double rate = 100.0;
  for (int i = 0; i < 300; ++i) {
    t += reference_rng.NextUnitExponential() / rate;
    ASSERT_DOUBLE_EQ(arrivals.NextArrivalTime(), t);
  }
  // Mid-batch rate change. The stream prefetches one arrival ahead, so
  // the gap already consumed for the pending arrival is discarded (the
  // reference must skip it too) and the next gap divides by the new rate.
  rate = 250.0;
  arrivals.ResetRate(rate, t);
  reference_rng.NextUnitExponential();  // the discarded prefetched gap
  t += reference_rng.NextUnitExponential() / rate;
  for (int i = 0; i < 300; ++i) {
    ASSERT_DOUBLE_EQ(arrivals.NextArrivalTime(), t);
    t += reference_rng.NextUnitExponential() / rate;
  }
}

TEST(PoissonArrivalsTest, SilencedStreamConsumesNoDraws) {
  const std::uint64_t seed = 13;
  sim::PoissonArrivals arrivals(100.0, seed);
  RngStream reference_rng(seed, "poisson-arrivals");
  double t = reference_rng.NextUnitExponential() / 100.0;
  ASSERT_DOUBLE_EQ(arrivals.NextArrivalTime(), t);
  arrivals.ResetRate(0.0, t);
  EXPECT_TRUE(std::isinf(arrivals.NextArrivalTime()));
  // Re-enabling resumes the gap sequence exactly where the stream left it:
  // the gap prefetched for the (discarded) second arrival is skipped, and
  // silence itself consumed nothing.
  arrivals.ResetRate(50.0, 400.0);
  reference_rng.NextUnitExponential();  // the discarded prefetched gap
  const double expected = 400.0 + reference_rng.NextUnitExponential() / 50.0;
  ASSERT_DOUBLE_EQ(arrivals.NextArrivalTime(), expected);
}

// ---- Table-driven histogram bin map ---------------------------------------

// The defining map (quantile.cc ReferenceBinIndex), restated here as an
// independent reference: one log10 per call.
std::size_t Log10BinIndex(double x) {
  if (!(x > LogHistogramQuantile::kMinValue)) return 0;
  const double position = std::log10(x / LogHistogramQuantile::kMinValue) *
                          LogHistogramQuantile::kBinsPerDecade;
  const auto bin = static_cast<std::size_t>(position) + 1;
  return std::min(bin, LogHistogramQuantile::kNumBins - 1);
}

TEST(LogHistogramBinIndexTest, MatchesLog10ReferenceAroundEveryBoundary) {
  // Every bin boundary value, probed just below, at, and just above in ULP
  // steps — exactly where a table edge would be off by one.
  for (std::size_t bin = 1; bin + 1 < LogHistogramQuantile::kNumBins;
       ++bin) {
    const double boundary =
        LogHistogramQuantile::kMinValue *
        std::pow(10.0, static_cast<double>(bin - 1) /
                           LogHistogramQuantile::kBinsPerDecade);
    for (double x :
         {std::nextafter(boundary, 0.0), boundary,
          std::nextafter(boundary, 1e30)}) {
      ASSERT_EQ(LogHistogramQuantile::BinIndex(x), Log10BinIndex(x))
          << "bin " << bin << " x " << x;
    }
  }
  // Range edges and clamps.
  for (double x : {0.0, 1e-9, LogHistogramQuantile::kMinValue,
                   LogHistogramQuantile::kMaxValue, 1e12}) {
    EXPECT_EQ(LogHistogramQuantile::BinIndex(x), Log10BinIndex(x)) << x;
  }
}

TEST(LogHistogramBinIndexTest, RepresentativeRoundTrips) {
  for (std::size_t bin = 0; bin < LogHistogramQuantile::kNumBins; ++bin) {
    EXPECT_EQ(LogHistogramQuantile::BinIndex(
                  LogHistogramQuantile::BinRepresentative(bin)),
              bin)
        << "bin " << bin;
  }
}

TEST(LogHistogramBinIndexTest, DenseSweepAgreesWithReference) {
  // Geometric sweep over the whole covered range at ~40 points per bin.
  double x = LogHistogramQuantile::kMinValue / 4.0;
  const double step = std::pow(
      10.0, 1.0 / (LogHistogramQuantile::kBinsPerDecade * 40.0));
  while (x < LogHistogramQuantile::kMaxValue * 4.0) {
    ASSERT_EQ(LogHistogramQuantile::BinIndex(x), Log10BinIndex(x)) << x;
    x *= step;
  }
}

// ---- Ziggurat gaussian ----------------------------------------------------

TEST(NextGaussianFastTest, MomentsMatchTheStandardNormal) {
  RngStream rng(123, "ziggurat-moments");
  const int n = 2'000'000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  double min_seen = 0.0, max_seen = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussianFast();
    sum += g;
    sum2 += g * g;
    sum3 += g * g * g;
    sum4 += g * g * g * g;
    min_seen = std::min(min_seen, g);
    max_seen = std::max(max_seen, g);
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.005);
  EXPECT_NEAR(var, 1.0, 0.01);
  EXPECT_NEAR(sum3 / n, 0.0, 0.02);       // skewness ~ 0
  EXPECT_NEAR(sum4 / n, 3.0, 0.05);       // kurtosis ~ 3
  // The tail path past the ziggurat base layer (|x| > 3.4426) must be
  // exercised: P(|X| > 3.44) ~ 5.8e-4, so ~1150 expected draws out there.
  EXPECT_LT(min_seen, -3.5);
  EXPECT_GT(max_seen, 3.5);
  // And bounded: values beyond ~6 sigma are vanishingly unlikely at n=2M.
  EXPECT_GT(min_seen, -7.0);
  EXPECT_LT(max_seen, 7.0);
}

TEST(NextGaussianFastTest, TailProbabilitiesMatch) {
  RngStream rng(77, "ziggurat-tails");
  const int n = 1'000'000;
  int beyond1 = 0, beyond2 = 0, beyond3 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = std::abs(rng.NextGaussianFast());
    if (g > 1.0) ++beyond1;
    if (g > 2.0) ++beyond2;
    if (g > 3.0) ++beyond3;
  }
  // Two-sided tail masses: 31.73%, 4.55%, 0.27%.
  EXPECT_NEAR(static_cast<double>(beyond1) / n, 0.3173, 0.004);
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.0455, 0.002);
  EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0027, 0.0005);
}

// ---- Whole-simulator determinism ------------------------------------------

// Twin runs of one configuration must agree bit for bit: the hot-path
// machinery above (arena, SoA queue, batched draws, bin tables, ziggurat)
// is allowed to be fast, not to be approximately deterministic.
TEST(ClusterSimHotPathTest, TwinRunsAreBitIdentical) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("hotpath-flat", 3600.0,
                                  std::vector<double>(8, 250.0));
  sim::SimOptions options;
  options.arrival_rate_qps = 140.0;
  options.window_seconds = 300.0;
  options.seed = 9;
  const serving::Deployment base =
      serving::MakeBase(models::Application::kClassification, 4);

  sim::ClusterSim a(base, zoo, &trace, options);
  sim::ClusterSim b(base, zoo, &trace, options);
  a.AdvanceTo(3600.0);
  b.AdvanceTo(3600.0);

  EXPECT_EQ(a.total_arrivals(), b.total_arrivals());
  EXPECT_EQ(a.total_completions(), b.total_completions());
  EXPECT_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_EQ(a.total_carbon_g(), b.total_carbon_g());
  EXPECT_EQ(a.OverallP95Ms(), b.OverallP95Ms());
  EXPECT_EQ(a.OverallQuantileMs(0.99), b.OverallQuantileMs(0.99));
  ASSERT_EQ(a.windows().size(), b.windows().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_EQ(a.windows()[i].completions, b.windows()[i].completions);
    EXPECT_EQ(a.windows()[i].p95_ms, b.windows()[i].p95_ms);
    EXPECT_EQ(a.windows()[i].energy_j, b.windows()[i].energy_j);
  }
}

}  // namespace
}  // namespace clover
