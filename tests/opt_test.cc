// Tests for the objective (including the paper's Fig. 6 worked example),
// the evaluators, simulated annealing, and Blover's random search.
#include <gtest/gtest.h>

#include "carbon/trace.h"
#include "common/units.h"
#include "graph/neighbors.h"
#include "opt/annealing.h"
#include "opt/evaluator.h"
#include "opt/objective.h"
#include "opt/random_search.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"

namespace clover::opt {
namespace {

using models::Application;
using models::DefaultZoo;

// --- Objective (Eqs. 1-3, 6) ---

// The paper's Fig. 6 example uses abstract energy units E with
// dCarbon = (Cbase - E*ci)/Cbase; our EvalMetrics stores joules and applies
// unit conversion + PUE, so express the example through a metrics value
// that makes E*ci come out in grams directly: pue=1, energy such that
// CarbonGrams(energy, ci, 1) == E*ci, i.e. energy = E kWh in joules.
EvalMetrics Fig6Metrics(double e_units, double accuracy) {
  EvalMetrics m;
  m.energy_per_request_j = KwhToJoules(e_units);
  m.accuracy = accuracy;
  m.p95_ms = 10.0;
  return m;
}

ObjectiveParams Fig6Params() {
  ObjectiveParams params;
  params.lambda = 0.1;
  params.a_base = 100.0;  // so accuracy 96 => dAccuracy = -4%
  params.c_base_g = 1000.0;
  params.l_tail_ms = 100.0;
  params.pue = 1.0;
  return params;
}

TEST(Objective, Fig6ConfigAAtHighIntensity) {
  // Config A: E=0.4, dAccuracy=-4. At ci=500: dCarbon = (1000-200)/1000 =
  // 80%, objective = 0.1*80 + 0.9*(-4) = 4.4 (paper's printed value).
  const EvalMetrics a = Fig6Metrics(0.4, 96.0);
  const ObjectiveParams params = Fig6Params();
  EXPECT_NEAR(DeltaCarbonPct(a, params, 500.0), 80.0, 1e-9);
  EXPECT_NEAR(DeltaAccuracyPct(a, params), -4.0, 1e-9);
  EXPECT_NEAR(ObjectiveF(a, params, 500.0), 4.4, 1e-9);
}

TEST(Objective, Fig6ConfigAAtLowIntensity) {
  // At ci=100: dCarbon = (1000-40)/1000 = 96%, objective = 9.6 - 3.6 = 6.0.
  const EvalMetrics a = Fig6Metrics(0.4, 96.0);
  EXPECT_NEAR(ObjectiveF(a, Fig6Params(), 100.0), 6.0, 1e-9);
}

TEST(Objective, Fig6ConfigBAtLowIntensity) {
  // Config B: E=1.2, dAccuracy=-2. At ci=100: dCarbon = (1000-120)/1000 =
  // 88%, objective = 8.8 - 1.8 = 7.0 (paper's printed value).
  const EvalMetrics b = Fig6Metrics(1.2, 98.0);
  EXPECT_NEAR(ObjectiveF(b, Fig6Params(), 100.0), 7.0, 1e-9);
}

TEST(Objective, Fig6PreferenceFlipsWithIntensity) {
  // The figure's point: A wins at ci=500, B wins at ci=100. (Note the
  // paper's printed objective for B at ci=500 is 3.2; Eq. 3 actually gives
  // 0.1*40 + 0.9*(-2) = 2.2 — a typo in the figure; the preference order
  // is unaffected. Recorded in EXPERIMENTS.md.)
  const EvalMetrics a = Fig6Metrics(0.4, 96.0);
  const EvalMetrics b = Fig6Metrics(1.2, 98.0);
  const ObjectiveParams params = Fig6Params();
  EXPECT_GT(ObjectiveF(a, params, 500.0), ObjectiveF(b, params, 500.0));
  EXPECT_LT(ObjectiveF(a, params, 100.0), ObjectiveF(b, params, 100.0));
  EXPECT_NEAR(ObjectiveF(b, params, 500.0), 2.2, 1e-9);
}

TEST(Objective, AnnealEnergyIsNegatedFWhenSlaMet) {
  EXPECT_DOUBLE_EQ(AnnealEnergyH(5.0, 50.0, 100.0), -5.0);
  EXPECT_DOUBLE_EQ(AnnealEnergyH(-3.0, 50.0, 100.0), 3.0);
}

TEST(Objective, AnnealEnergyPunishesSlaViolation) {
  // f > 0 and L = 2x Ltail: h = -f * 0.5 > -f (worse for the minimizer).
  EXPECT_DOUBLE_EQ(AnnealEnergyH(5.0, 200.0, 100.0), -2.5);
  EXPECT_GT(AnnealEnergyH(5.0, 200.0, 100.0), AnnealEnergyH(5.0, 50.0, 100.0));
}

TEST(Objective, AccuracyThresholdPenalty) {
  ObjectiveParams params = Fig6Params();
  params.max_accuracy_loss_pct = 1.0;
  const EvalMetrics within = Fig6Metrics(0.4, 99.5);   // loss 0.5%
  const EvalMetrics beyond = Fig6Metrics(0.4, 96.0);   // loss 4%
  // Within the limit: no penalty (same as the unconstrained objective).
  ObjectiveParams unconstrained = Fig6Params();
  EXPECT_DOUBLE_EQ(ObjectiveF(within, params, 100.0),
                   ObjectiveF(within, unconstrained, 100.0));
  // Beyond: penalized by threshold_penalty * excess = 200 * 3 = 600.
  EXPECT_NEAR(ObjectiveF(beyond, params, 100.0),
              ObjectiveF(beyond, unconstrained, 100.0) - 600.0, 1e-9);
}

TEST(Objective, MeetsSla) {
  ObjectiveParams params = Fig6Params();
  EXPECT_TRUE(MeetsSla(Fig6Metrics(1.0, 90.0), params));
  EvalMetrics slow = Fig6Metrics(1.0, 90.0);
  slow.p95_ms = 101.0;
  EXPECT_FALSE(MeetsSla(slow, params));
}

// --- Evaluators ---

struct TestHarness {
  carbon::CarbonTrace trace{"flat", 3600.0, std::vector<double>(200, 200.0)};
  serving::Deployment base;
  double rate;
  sim::ClusterSim sim;
  graph::GraphMapper mapper;

  explicit TestHarness(int gpus = 4)
      : base(serving::MakeBase(Application::kClassification, gpus)),
        rate(sim::SizeArrivalRate(DefaultZoo(), Application::kClassification,
                                  gpus, 0.75)),
        sim(base, DefaultZoo(), &trace, MakeOptions(rate)),
        mapper(&DefaultZoo(), gpus) {}

  static sim::SimOptions MakeOptions(double rate) {
    sim::SimOptions options;
    options.arrival_rate_qps = rate;
    options.window_seconds = 300.0;
    options.seed = 17;
    return options;
  }
};

TEST(SimEvaluator, MeasuresDeployedConfiguration) {
  TestHarness h;
  SimEvaluator::Options options;
  options.measure_window_s = 30.0;
  options.l_tail_ms = 200.0;
  SimEvaluator evaluator(&h.sim, &h.mapper, options);
  const graph::ConfigGraph base_graph =
      graph::ConfigGraph::FromDeployment(h.base, DefaultZoo());
  const EvalOutcome outcome = evaluator.Evaluate(base_graph);
  EXPECT_GT(outcome.metrics.accuracy, 84.0);  // all-B7
  EXPECT_GT(outcome.metrics.energy_per_request_j, 0.0);
  EXPECT_GT(outcome.cost_seconds, 0.0);
  EXPECT_FALSE(outcome.from_cache);
}

TEST(CachingEvaluator, SecondLookupIsFree) {
  TestHarness h;
  SimEvaluator::Options options;
  options.measure_window_s = 30.0;
  options.l_tail_ms = 200.0;
  SimEvaluator inner(&h.sim, &h.mapper, options);
  CachingEvaluator cache(&inner);
  const graph::ConfigGraph g =
      graph::ConfigGraph::FromDeployment(h.base, DefaultZoo());
  const EvalOutcome first = cache.Evaluate(g);
  const EvalOutcome second = cache.Evaluate(g);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_DOUBLE_EQ(second.cost_seconds, 0.0);
  EXPECT_DOUBLE_EQ(second.metrics.accuracy, first.metrics.accuracy);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(AnalyticEvaluator, MatchesSimulatorToFirstOrder) {
  TestHarness h;
  AnalyticEvaluator analytic(&DefaultZoo(), 4, h.rate, 200.0);
  SimEvaluator::Options options;
  options.measure_window_s = 120.0;
  options.l_tail_ms = 200.0;
  SimEvaluator simulated(&h.sim, &h.mapper, options);
  const graph::ConfigGraph g =
      graph::ConfigGraph::FromDeployment(h.base, DefaultZoo());
  h.sim.AdvanceTo(300.0);  // warm up
  const EvalOutcome sim_outcome = simulated.Evaluate(g);
  const EvalOutcome ana_outcome = analytic.Evaluate(g);
  EXPECT_NEAR(ana_outcome.metrics.accuracy, sim_outcome.metrics.accuracy,
              0.5);
  EXPECT_NEAR(ana_outcome.metrics.energy_per_request_j,
              sim_outcome.metrics.energy_per_request_j,
              0.3 * sim_outcome.metrics.energy_per_request_j);
}

TEST(AnalyticEvaluator, OverloadDetected) {
  AnalyticEvaluator analytic(&DefaultZoo(), 1, 1000.0, 200.0);
  graph::ConfigGraph g(Application::kClassification, 4);
  g.SetWeight(3, mig::SliceType::k7g, 1);  // one B7 can't do 1000 qps
  const EvalOutcome outcome = analytic.Evaluate(g);
  EXPECT_FALSE(outcome.sla_ok);
  EXPECT_GT(outcome.metrics.p95_ms, 1e5);
}

// --- Simulated annealing & random search (on the analytic evaluator for
// speed and determinism) ---

ObjectiveParams ClassificationParams(double rate) {
  // Build params from the analytic BASE point.
  AnalyticEvaluator analytic(&DefaultZoo(), 10, rate, 1e9);
  graph::ConfigGraph base(Application::kClassification, 4);
  base.SetWeight(3, mig::SliceType::k7g, 10);
  const EvalOutcome outcome = analytic.Evaluate(base);
  ObjectiveParams params;
  params.lambda = 0.5;
  params.a_base = outcome.metrics.accuracy;
  params.c_base_g =
      CarbonGrams(outcome.metrics.energy_per_request_j, 250.0, 1.5);
  params.l_tail_ms = outcome.metrics.p95_ms * 1.1;
  params.pue = 1.5;
  return params;
}

TEST(SimulatedAnnealing, ImprovesOverBaseAtHighIntensity) {
  const double rate =
      sim::SizeArrivalRate(DefaultZoo(), Application::kClassification, 10,
                           0.75);
  const ObjectiveParams params = ClassificationParams(rate);
  AnalyticEvaluator evaluator(&DefaultZoo(), 10, rate, params.l_tail_ms);
  CachingEvaluator cache(&evaluator);
  graph::GraphMapper mapper(&DefaultZoo(), 10);
  graph::NeighborSampler sampler(&mapper, 23);
  SimulatedAnnealing::Options options;
  options.time_budget_s = 1e9;     // analytic evals cost 0 time
  options.no_improve_limit = 40;   // let it search
  options.max_evaluations = 400;
  SimulatedAnnealing annealer(&cache, &sampler, options, 23);

  graph::ConfigGraph base(Application::kClassification, 4);
  base.SetWeight(3, mig::SliceType::k7g, 10);
  const SearchResult result = annealer.Run(base, params, 300.0);

  EXPECT_TRUE(result.best_sla_ok);
  // At high intensity the base objective is ~0 + small; SA must find
  // something strictly better (partitioned / mixed-quality).
  const double base_f =
      ObjectiveF(cache.Evaluate(base).metrics, params, 300.0);
  EXPECT_GT(result.best_f, base_f + 5.0);
  EXPECT_GE(result.evaluations.size(), 5u);
}

TEST(SimulatedAnnealing, TimeBudgetRespected) {
  const double rate = 100.0;
  const ObjectiveParams params = ClassificationParams(rate);
  // Wrap the analytic evaluator to charge 10 s per evaluation.
  class CostlyEvaluator : public Evaluator {
   public:
    explicit CostlyEvaluator(Evaluator* inner) : inner_(inner) {}
    EvalOutcome Evaluate(const graph::ConfigGraph& g) override {
      EvalOutcome outcome = inner_->Evaluate(g);
      outcome.cost_seconds = 10.0;
      return outcome;
    }
    Evaluator* inner_;
  };
  AnalyticEvaluator analytic(&DefaultZoo(), 10, rate, params.l_tail_ms);
  CostlyEvaluator costly(&analytic);
  graph::GraphMapper mapper(&DefaultZoo(), 10);
  graph::NeighborSampler sampler(&mapper, 31);
  SimulatedAnnealing::Options options;
  options.time_budget_s = 95.0;  // fits at most ceil(95/10)=10 evals
  options.no_improve_limit = 1000;
  SimulatedAnnealing annealer(&costly, &sampler, options, 31);
  graph::ConfigGraph base(Application::kClassification, 4);
  base.SetWeight(3, mig::SliceType::k7g, 10);
  const SearchResult result = annealer.Run(base, params, 200.0);
  EXPECT_LE(result.evaluations.size(), 11u);
  EXPECT_GE(result.elapsed_seconds, 95.0);
}

TEST(SimulatedAnnealing, NoImproveTermination) {
  const double rate = 100.0;
  const ObjectiveParams params = ClassificationParams(rate);
  AnalyticEvaluator analytic(&DefaultZoo(), 10, rate, params.l_tail_ms);
  graph::GraphMapper mapper(&DefaultZoo(), 10);
  graph::NeighborSampler sampler(&mapper, 37);
  SimulatedAnnealing::Options options;
  options.time_budget_s = 1e9;
  options.no_improve_limit = 5;
  SimulatedAnnealing annealer(&analytic, &sampler, options, 37);
  graph::ConfigGraph base(Application::kClassification, 4);
  base.SetWeight(3, mig::SliceType::k7g, 10);
  const SearchResult result = annealer.Run(base, params, 200.0);
  // The run must stop within a bounded number of evaluations; the final 5
  // evaluations found nothing better.
  ASSERT_GE(result.evaluations.size(), 6u);
  EXPECT_LT(result.evaluations.size(), 400u);
}

TEST(RandomSearch, SamplesFeasibleConfigurations) {
  graph::GraphMapper mapper(&DefaultZoo(), 6);
  AnalyticEvaluator analytic(&DefaultZoo(), 6, 100.0, 1e9);
  RandomSearch::Options options;
  RandomSearch search(&analytic, &mapper, options, 41);
  for (int i = 0; i < 100; ++i) {
    const graph::ConfigGraph g =
        search.SampleConfiguration(Application::kLanguage);
    EXPECT_TRUE(mapper.IsFeasible(g));
    EXPECT_GE(g.TotalInstances(), 1);
    EXPECT_LE(g.TotalInstances(), 42);
  }
}

TEST(RandomSearch, FindsImprovementsButLessEfficiently) {
  const double rate =
      sim::SizeArrivalRate(DefaultZoo(), Application::kClassification, 10,
                           0.75);
  const ObjectiveParams params = ClassificationParams(rate);
  AnalyticEvaluator evaluator(&DefaultZoo(), 10, rate, params.l_tail_ms);
  graph::GraphMapper mapper(&DefaultZoo(), 10);
  RandomSearch::Options options;
  options.time_budget_s = 1e9;
  options.no_improve_limit = 30;
  options.max_evaluations = 300;
  RandomSearch search(&evaluator, &mapper, options, 43);
  graph::ConfigGraph base(Application::kClassification, 4);
  base.SetWeight(3, mig::SliceType::k7g, 10);
  const SearchResult result = search.Run(base, params, 300.0);
  EXPECT_GE(result.evaluations.size(), 5u);
  // Random search still improves over BASE eventually...
  const double base_f = result.evaluations.front().f;
  EXPECT_GT(result.best_f, base_f);
}

}  // namespace
}  // namespace clover::opt
