// Unit tests for the common utilities: RNG streams, quantile estimators,
// running stats, units, tables and check macros.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/csv.h"
#include "common/quantile.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace clover {
namespace {

TEST(Check, ThrowsWithContext) {
  EXPECT_THROW(CLOVER_CHECK(1 == 2), CheckError);
  try {
    CLOVER_CHECK_MSG(false, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Rng, SameSeedSameStreamIsDeterministic) {
  RngStream a(123, "stream");
  RngStream b(123, "stream");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentStreamsDiverge) {
  RngStream a(123, "alpha");
  RngStream b(123, "beta");
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  RngStream rng(7, "doubles");
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedStaysInBounds) {
  RngStream rng(7, "bounded");
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 19ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  RngStream rng(11, "expo");
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, GaussianMomentsMatch) {
  RngStream rng(13, "gauss");
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(ExactQuantile, NearestRankDefinition) {
  ExactQuantile q;
  for (int i = 1; i <= 100; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile p95(0.95);
  ExactQuantile exact;
  RngStream rng(17, "p2-small");
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextDouble() * 100.0;
    p95.Add(x);
    exact.Add(x);
  }
  EXPECT_DOUBLE_EQ(p95.Value(), exact.Quantile(0.95));
}

class P2AccuracySweep : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracySweep, TracksExactQuantileOnLognormal) {
  const double quantile = GetParam();
  P2Quantile p2(quantile);
  ExactQuantile exact;
  RngStream rng(19, "p2-sweep");
  for (int i = 0; i < 50000; ++i) {
    const double x = std::exp(rng.NextGaussian());  // heavy-ish tail
    p2.Add(x);
    exact.Add(x);
  }
  const double truth = exact.Quantile(quantile);
  EXPECT_NEAR(p2.Value(), truth, 0.05 * truth);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracySweep,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, ResetClears) {
  P2Quantile p(0.95);
  for (int i = 0; i < 1000; ++i) p.Add(i);
  p.Reset();
  EXPECT_EQ(p.count(), 0u);
  EXPECT_DOUBLE_EQ(p.Value(), 0.0);
}

TEST(LogHistogramQuantile, TracksExactWithinBinResolution) {
  LogHistogramQuantile hist;
  ExactQuantile exact;
  RngStream rng(29, "loghist");
  for (int i = 0; i < 100000; ++i) {
    const double x = std::exp(rng.NextGaussian() * 1.5 + 3.0);  // ~20ms scale
    hist.Add(x);
    exact.Add(x);
  }
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double truth = exact.Quantile(q);
    EXPECT_NEAR(hist.Quantile(q), truth, 0.03 * truth) << "q=" << q;
  }
}

TEST(LogHistogramQuantile, RobustToNonstationaryPrefix) {
  // A pathological heavy prefix (reconfiguration storm) followed by a long
  // steady stream: the quantile must reflect the stream, not the prefix.
  // (This is the failure mode that rules out P² for run-level latencies.)
  LogHistogramQuantile hist;
  for (int i = 0; i < 1000; ++i) hist.Add(5000.0);   // 1% storm
  for (int i = 0; i < 99000; ++i) hist.Add(30.0);    // steady state
  EXPECT_NEAR(hist.Quantile(0.95), 30.0, 2.0);
  EXPECT_GT(hist.Quantile(0.995), 1000.0);
}

TEST(LogHistogramQuantile, ClampsAndResets) {
  LogHistogramQuantile hist;
  hist.Add(0.0);    // below range -> bottom bin
  hist.Add(1e12);   // above range -> top bin
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_LE(hist.Quantile(0.25), LogHistogramQuantile::kMinValue * 1.05);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.95), 0.0);
}

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats stats;
  for (int i = 1; i <= 10; ++i) stats.Add(i);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.5);
  EXPECT_NEAR(stats.variance(), 8.25, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RngStream rng(23, "merge");
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Units, RoundTrips) {
  EXPECT_DOUBLE_EQ(JoulesToKwh(KwhToJoules(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(KwhToJoules(1.0), 3.6e6);
  EXPECT_DOUBLE_EQ(SecondsToMs(MsToSeconds(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(HoursToSeconds(1.0), 3600.0);
}

TEST(Units, CarbonGramsAppliesPue) {
  // 1 kWh at 200 g/kWh with PUE 1.5 -> 300 g.
  EXPECT_NEAR(CarbonGrams(KwhToJoules(1.0), 200.0, 1.5), 300.0, 1e-9);
}

TEST(TextTable, AlignsAndValidatesArity) {
  TextTable table({"a", "bb"});
  table.AddRow({"1", "2"});
  EXPECT_THROW(table.AddRow({"only-one"}), CheckError);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Csv, EscapesAndWrites) {
  const std::string path = ::testing::TempDir() + "/clover_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "label"});
    csv.WriteRow(std::vector<std::string>{"1", "plain"});
    csv.WriteRow(std::vector<std::string>{"2", "with,comma"});
  }
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(all.find("x,label"), std::string::npos);
}

TEST(WindowedSeries, TimesAndSummary) {
  WindowedSeries series(300.0);
  series.Append(1.0);
  series.Append(3.0);
  EXPECT_DOUBLE_EQ(series.TimeOf(1), 300.0);
  EXPECT_DOUBLE_EQ(series.Summary().mean(), 2.0);
}

}  // namespace
}  // namespace clover
