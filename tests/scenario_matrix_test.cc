// Scenario-matrix integration tests: the full pipeline (carbon trace ->
// controller/optimizer -> cluster simulator -> serving runtime) driven
// across diverse end-to-end configurations, each asserting the system's
// cross-cutting invariants — carbon savings never negative vs BASE, SLO
// attainment, accuracy envelopes, and bit-identical determinism under a
// fixed seed. This matrix is the regression net future scale/perf PRs
// verify against; add a Scenario (not a bespoke test) for new workloads.
#include <gtest/gtest.h>

#include <vector>

#include "serving/runtime.h"
#include "testing/golden.h"
#include "testing/scenario.h"
#include "testing/trace_fixtures.h"

namespace clover::testing {
namespace {

using models::Application;

std::vector<Scenario> ScenarioMatrix() {
  std::vector<Scenario> matrix;

  // 1. The paper's headline setting at test scale: diurnal solar grid,
  //    steady Poisson load sized at 75% BASE utilization.
  {
    Scenario s;
    s.name = "steady_diurnal_classification";
    s.app = Application::kClassification;
    s.trace = TraceKind::kCisoMarch;
    s.limits.min_carbon_save_pct = 20.0;  // diurnal dip is exploitable
    s.limits.max_accuracy_loss_pct = 8.0;
    matrix.push_back(s);
  }

  // 2. Flat intensity: savings must come from serving the same stream
  //    with less energy, not from chasing clean hours.
  {
    Scenario s;
    s.name = "flat_trace_language";
    s.app = Application::kLanguage;
    s.trace = TraceKind::kFlat;
    s.limits.min_carbon_save_pct = 0.0;
    // With no clean hours to wait for, lambda=0.5 legitimately rides the
    // smallest ALBERT variant; allow the family's full published span.
    s.limits.max_accuracy_loss_pct = 12.0;
    matrix.push_back(s);
  }

  // 3. Bursty arrivals on the stochastic wind-dominated grid: a 2.5x rate
  //    burst ~20% of the time that steady sizing did not provision for.
  {
    Scenario s;
    s.name = "bursty_eso_classification";
    s.app = Application::kClassification;
    s.trace = TraceKind::kEsoMarch;
    s.burst.rate_multiplier = 2.5;
    s.burst.mean_burst_s = 120.0;
    s.burst.mean_gap_s = 480.0;
    s.limits.min_completion_ratio = 0.95;
    s.limits.p95_vs_base_limit = 2.0;
    matrix.push_back(s);
  }

  // 4. Reduced fleet (Fig. 15): the rate stays sized for 4 GPUs but only
  //    2 are deployed. BASE overloads; CLOVER must repartition and
  //    downshift to keep serving within the SLA's steady-state regime.
  {
    Scenario s;
    s.name = "reduced_fleet_detection";
    s.app = Application::kDetection;
    s.trace = TraceKind::kCisoMarch;
    s.num_gpus = 2;
    s.sizing_gpus = 4;
    s.limits.base_overloaded = true;
    s.limits.min_completion_ratio = 0.90;  // CLOVER's cold-start backlog
    s.limits.max_accuracy_loss_pct = 12.0;
    s.limits.p95_slo_slack = 1.5;
    matrix.push_back(s);
  }

  // 5. Accuracy-constrained objective (Fig. 14 threshold mode) on a
  //    square-wave trace whose every edge triggers reoptimization.
  {
    Scenario s;
    s.name = "accuracy_constrained_step_classification";
    s.app = Application::kClassification;
    s.trace = TraceKind::kStep;
    s.accuracy_limit_pct = 2.0;
    s.limits.max_accuracy_loss_pct = 2.5;
    matrix.push_back(s);
  }

  return matrix;
}

class ScenarioMatrixTest : public ::testing::TestWithParam<Scenario> {
 protected:
  core::ExperimentHarness harness_{&models::DefaultZoo()};
};

TEST_P(ScenarioMatrixTest, InvariantsHold) {
  const Scenario& scenario = GetParam();
  const carbon::CarbonTrace trace = MakeScenarioTrace(scenario);
  const ScenarioRun run = RunScenario(harness_, scenario, trace);
  CheckScenarioInvariants(scenario, run);
}

TEST_P(ScenarioMatrixTest, DeterministicUnderFixedSeed) {
  const Scenario& scenario = GetParam();
  const carbon::CarbonTrace trace = MakeScenarioTrace(scenario);
  const auto config = MakeConfig(scenario, core::Scheme::kClover, &trace);
  const core::RunReport a = harness_.Run(config);
  const core::RunReport b = harness_.Run(config);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.total_carbon_g, b.total_carbon_g);
  EXPECT_DOUBLE_EQ(a.weighted_accuracy, b.weighted_accuracy);
  EXPECT_DOUBLE_EQ(a.overall_p95_ms, b.overall_p95_ms);
  EXPECT_EQ(a.optimizations.size(), b.optimizations.size());
  ASSERT_EQ(a.objective_series.size(), b.objective_series.size());
  for (std::size_t i = 0; i < a.objective_series.size(); ++i)
    EXPECT_DOUBLE_EQ(a.objective_series[i], b.objective_series[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioMatrixTest, ::testing::ValuesIn(ScenarioMatrix()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

// The serving-runtime leg: the deployment the optimizer converged to is
// realized on the threaded InferenceRuntime (real producer/dispatcher/
// worker threads), closing the trace -> optimizer -> simulator -> runtime
// pipeline end to end.
TEST(ScenarioServingRuntime, OptimizedDeploymentServesOnRealThreads) {
  core::ExperimentHarness harness(&models::DefaultZoo());
  Scenario scenario;
  scenario.name = "runtime_leg";
  scenario.app = Application::kClassification;
  scenario.trace = TraceKind::kCisoMarch;
  scenario.duration_hours = 3.0;
  const carbon::CarbonTrace trace = MakeScenarioTrace(scenario);
  const core::RunReport report =
      harness.Run(MakeConfig(scenario, core::Scheme::kClover, &trace));
  ASSERT_GT(report.optimizations.size(), 0u);

  const serving::Deployment deployment = FinalCloverDeployment(
      report, models::DefaultZoo(), scenario.num_gpus);
  serving::InferenceRuntime runtime(deployment, models::DefaultZoo());
  runtime.Start();
  constexpr int kRequests = 2000;
  int accepted = 0;
  for (int i = 0; i < kRequests; ++i) accepted += runtime.Submit() ? 1 : 0;
  runtime.Drain();
  const serving::InferenceRuntime::Stats stats = runtime.SnapshotStats();

  EXPECT_EQ(accepted, kRequests);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  const models::ModelFamily& family =
      models::DefaultZoo().ForApplication(scenario.app);
  EXPECT_TRUE(InGoldenRange(
      "runtime_weighted_accuracy", stats.weighted_accuracy,
      {family.Smallest().accuracy, family.Largest().accuracy}));
  EXPECT_GT(stats.p95_latency_ms, 0.0);
  EXPECT_GE(stats.p95_latency_ms, stats.mean_latency_ms);
}

// --- Fleet scenarios: the multi-region routing layer over the same
// pipeline. Regions run BASE so the assertions isolate the *spatial*
// policy; fleet_test.cc and the fleet_routing bench cover CLOVER-per-region
// on the same presets.

// Anti-correlated grids: the carbon-greedy router must beat the static
// split on gCO2 — there is always a cleaner region to lean on.
TEST(FleetScenarioMatrix, AntiCorrelatedGreedyBeatsStatic) {
  const FleetScenario scenario = AntiCorrelatedFleetScenario();
  const FleetScenarioRun run = RunFleetScenario(scenario);
  CheckFleetScenarioInvariants(scenario, run);
}

// Correlated grids: nothing to arbitrage beyond weather noise; the greedy
// router must not do worse than the static split.
TEST(FleetScenarioMatrix, CorrelatedGreedyNotWorse) {
  const FleetScenario scenario = CorrelatedFleetScenario();
  const FleetScenarioRun run = RunFleetScenario(scenario);
  CheckFleetScenarioInvariants(scenario, run);
}

// Region outage: the router routes around the downed region (weight 0
// while offline, restored afterwards) and the fleet SLO holds throughout.
TEST(FleetScenarioMatrix, OutageRedistributesAndSloHolds) {
  const FleetScenario scenario = OutageFleetScenario();
  const FleetScenarioRun run = RunFleetScenario(scenario);
  CheckFleetScenarioInvariants(scenario, run);

  const fleet::RegionConfig& outage_region = scenario.config.regions[1];
  ASSERT_TRUE(outage_region.HasOutage());
  const double interval = scenario.config.control_interval_s;
  for (const fleet::FleetReport* report :
       {&run.greedy, &run.static_split}) {
    SCOPED_TRACE(report->router_name);
    bool saw_outage = false, saw_recovery = false;
    for (std::size_t r = 0; r < report->weight_history.size(); ++r) {
      // Rebalance r happens at t = r * interval (index 0 = t of 0).
      const double t = static_cast<double>(r) * interval;
      const double weight = report->weight_history[r][1];
      if (t >= outage_region.outage_start_s &&
          t < outage_region.outage_end_s) {
        EXPECT_EQ(weight, 0.0) << "rebalance " << r;
        saw_outage = true;
      } else if (t >= outage_region.outage_end_s) {
        saw_recovery = saw_recovery || weight > 0.0;
      }
    }
    EXPECT_TRUE(saw_outage);
    EXPECT_TRUE(saw_recovery);
  }
}

// Unit-level sanity of the new burst modulation: the modulated stream is
// deterministic per seed, reduces to plain Poisson when disabled, and
// carries more arrivals per unit time when enabled.
TEST(BurstArrivals, DeterministicAndDenserThanSteady) {
  sim::BurstOptions burst;
  burst.rate_multiplier = 3.0;
  burst.mean_burst_s = 60.0;
  burst.mean_gap_s = 120.0;

  auto count_until = [](sim::PoissonArrivals& arrivals, double horizon_s) {
    int n = 0;
    while (arrivals.NextArrivalTime() < horizon_s) ++n;
    return n;
  };

  sim::PoissonArrivals steady_a(50.0, 7);
  sim::PoissonArrivals steady_b(50.0, 7);
  sim::PoissonArrivals bursty_a(50.0, 7, burst);
  sim::PoissonArrivals bursty_b(50.0, 7, burst);

  // Determinism: identical streams for identical (seed, options).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(steady_a.NextArrivalTime(), steady_b.NextArrivalTime());
    EXPECT_DOUBLE_EQ(bursty_a.NextArrivalTime(), bursty_b.NextArrivalTime());
  }

  // Density: with bursts on ~1/3 of the timeline at 3x rate, the long-run
  // average rate is ~1.67x the base rate.
  sim::PoissonArrivals steady(50.0, 7);
  sim::PoissonArrivals bursty(50.0, 7, burst);
  const double horizon_s = 3600.0;
  const int steady_n = count_until(steady, horizon_s);
  const int bursty_n = count_until(bursty, horizon_s);
  EXPECT_GT(bursty_n, steady_n);
  EXPECT_TRUE(NearWithTolerance("steady arrivals/hour", steady_n,
                                50.0 * horizon_s, 0.05));
  EXPECT_TRUE(NearWithTolerance("bursty arrivals/hour", bursty_n,
                                (50.0 * 5.0 / 3.0) * horizon_s, 0.20));
}

}  // namespace
}  // namespace clover::testing
