// Self-tests for the seeded property-based framework (tests/testing/
// proptest.h): reproducibility, failure-seed reporting, shrinking, and the
// environment-variable replay contract.
#include "testing/proptest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace clover::testing::prop {
namespace {

Domain<std::vector<double>> SmallVectorDomain() {
  return TraceValuesDomain(/*max_len=*/64, /*lo=*/0.0, /*hi=*/400.0);
}

TEST(PropTest, PassingPropertyReportsNothing) {
  Config config;
  config.name = "always-true";
  config.iterations = 25;
  const Outcome outcome = Check<std::vector<double>>(
      config, SmallVectorDomain(),
      [](const std::vector<double>&) { return std::nullopt; });
  EXPECT_TRUE(outcome.passed);
  EXPECT_TRUE(outcome.report.empty());
  EXPECT_EQ(outcome.failing_iteration, -1);
}

TEST(PropTest, SameConfigIsBitReproducible) {
  Config config;
  config.name = "reproducible";
  config.seed = 3;
  config.iterations = 10;
  std::vector<std::vector<double>> first, second;
  auto record = [](std::vector<std::vector<double>>* sink) {
    return [sink](const std::vector<double>& v) -> std::optional<std::string> {
      sink->push_back(v);
      return std::nullopt;
    };
  };
  Check<std::vector<double>>(config, SmallVectorDomain(), record(&first));
  Check<std::vector<double>>(config, SmallVectorDomain(), record(&second));
  EXPECT_EQ(first, second);
}

TEST(PropTest, FailureReportNamesTheSeedAndWitness) {
  Config config;
  config.name = "no-sample-above-350";
  config.seed = 5;
  config.iterations = 200;
  const auto property =
      [](const std::vector<double>& v) -> std::optional<std::string> {
    return std::any_of(v.begin(), v.end(), [](double x) { return x > 350.0; })
               ? std::optional<std::string>("found a sample above 350")
               : std::nullopt;
  };
  const Outcome outcome =
      Check<std::vector<double>>(config, SmallVectorDomain(), property);
  ASSERT_FALSE(outcome.passed);
  EXPECT_NE(outcome.report.find("FALSIFIED"), std::string::npos);
  EXPECT_NE(outcome.report.find("CLOVER_PROPTEST_SEED="), std::string::npos);
  EXPECT_NE(outcome.report.find(std::to_string(outcome.failing_seed)),
            std::string::npos);
  EXPECT_GE(outcome.failing_iteration, 0);

  // The reported seed replays the failure directly.
  Gen replay(outcome.failing_seed);
  const std::vector<double> witness = SmallVectorDomain().generate(replay);
  EXPECT_TRUE(property(witness).has_value());
}

TEST(PropTest, ShrinkingSimplifiesTheWitness) {
  // Witnesses shrink greedily; the vector domain halves length and flattens
  // values, so the reported counterexample must be no longer than the
  // original failing draw and still fail the property.
  Config config;
  config.name = "shrinks";
  config.seed = 11;
  config.iterations = 100;
  config.max_shrink_steps = 500;
  std::vector<double> last_witness;
  const auto property =
      [&last_witness](
          const std::vector<double>& v) -> std::optional<std::string> {
    if (v.size() >= 4) {
      last_witness = v;
      return "vector has >= 4 samples";
    }
    return std::nullopt;
  };
  const Outcome outcome =
      Check<std::vector<double>>(config, SmallVectorDomain(), property);
  ASSERT_FALSE(outcome.passed);
  EXPECT_GT(outcome.shrink_steps, 0);
  // Greedy halving bottoms out at the smallest failing size.
  EXPECT_EQ(last_witness.size(), 4u);
}

TEST(PropTest, PinnedSeedEnvReplaysExactlyOneIteration) {
  // First find a failing seed, then verify the env override replays it.
  Config config;
  config.name = "pinned";
  config.seed = 21;
  config.iterations = 50;
  const auto property =
      [](const std::vector<double>& v) -> std::optional<std::string> {
    return v.size() % 2 == 0 ? std::optional<std::string>("even length")
                             : std::nullopt;
  };
  const Outcome outcome =
      Check<std::vector<double>>(config, SmallVectorDomain(), property);
  ASSERT_FALSE(outcome.passed);

  ASSERT_EQ(setenv("CLOVER_PROPTEST_SEED",
                   std::to_string(outcome.failing_seed).c_str(), 1),
            0);
  int runs = 0;
  const Outcome replay = Check<std::vector<double>>(
      config, SmallVectorDomain(),
      [&](const std::vector<double>& v) {
        ++runs;
        return property(v);
      });
  unsetenv("CLOVER_PROPTEST_SEED");
  EXPECT_FALSE(replay.passed);
  EXPECT_EQ(replay.failing_seed, outcome.failing_seed);
  // One generate + shrink probes only (shrink candidates of an even-length
  // witness may themselves be tested).
  EXPECT_EQ(replay.failing_iteration, 0);
}

TEST(PropTest, IterationOverrideScalesTheRun) {
  ASSERT_EQ(setenv("CLOVER_PROPTEST_ITERS", "3", 1), 0);
  Config config;
  config.name = "iters-override";
  config.iterations = 100;
  int runs = 0;
  Check<std::vector<double>>(config, SmallVectorDomain(),
                             [&](const std::vector<double>&) {
                               ++runs;
                               return std::nullopt;
                             });
  unsetenv("CLOVER_PROPTEST_ITERS");
  EXPECT_EQ(runs, 3);
}

TEST(PropTest, MmcPointDomainShrinksTowardSimplicity) {
  const auto domain = MmcPointDomain(16, 0.2, 0.9);
  const std::vector<MmcPoint> candidates =
      domain.shrink({/*servers=*/8, /*rho=*/0.8});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].servers, 4);
  EXPECT_LT(candidates[1].rho, 0.8);
  EXPECT_GE(candidates[1].rho, 0.2);
}

}  // namespace
}  // namespace clover::testing::prop
