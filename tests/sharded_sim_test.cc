// ShardedClusterSim (sim/sharded_sim.h) contract tests.
//
// The load-bearing property is the shard determinism contract: the thread
// count decides which pool slot advances which lane, never what any lane
// computes, so a run's ShardedSummary (including every merged window) must
// be bit-identical at 1, 2 and 8 threads. The remaining tests pin the merge
// arithmetic (conservation across lanes), the global fault routing, and the
// constructor's validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "models/zoo.h"
#include "serving/deployment.h"
#include "sim/arrivals.h"
#include "sim/sharded_sim.h"

namespace clover::sim {
namespace {

constexpr int kLaneGpus = 2;
constexpr double kSpanSeconds = 900.0;  // 3 default windows

ShardedSimOptions BaseOptions(int lanes, std::uint64_t seed = 7) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  ShardedSimOptions options;
  options.num_lanes = lanes;
  options.base.arrival_rate_qps =
      SizeArrivalRate(zoo, models::Application::kClassification, kLaneGpus) *
      lanes;
  options.base.seed = seed;
  return options;
}

ShardedSummary RunSharded(const ShardedSimOptions& options, int threads) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("shard-flat", 3600.0,
                                  std::vector<double>(4, 250.0));
  const serving::Deployment lane =
      serving::MakeBase(models::Application::kClassification, kLaneGpus);
  ShardedClusterSim sim(lane, zoo, &trace, options);
  if (threads <= 1) {
    sim.AdvanceTo(kSpanSeconds, nullptr);
  } else {
    ThreadPool pool(threads);
    sim.AdvanceTo(kSpanSeconds, &pool);
  }
  return sim.Summary();
}

TEST(ShardedSim, BitIdenticalAcrossThreadCounts) {
  const ShardedSimOptions options = BaseOptions(/*lanes=*/4);
  const ShardedSummary serial = RunSharded(options, 1);
  const ShardedSummary two = RunSharded(options, 2);
  const ShardedSummary eight = RunSharded(options, 8);

  EXPECT_TRUE(ShardedSummariesBitIdentical(serial, two));
  EXPECT_TRUE(ShardedSummariesBitIdentical(serial, eight));
  // The contract is not vacuous: the run did real work and closed windows.
  EXPECT_GT(serial.completions, 1000u);
  EXPECT_EQ(serial.windows.size(), 3u);
  // Field-level spot checks so a predicate bug cannot mask a regression.
  EXPECT_EQ(serial.completions, eight.completions);
  EXPECT_EQ(serial.p95_ms, eight.p95_ms);
  EXPECT_EQ(serial.total_carbon_g, eight.total_carbon_g);
  ASSERT_EQ(serial.windows.size(), eight.windows.size());
  for (std::size_t w = 0; w < serial.windows.size(); ++w) {
    EXPECT_EQ(serial.windows[w].p95_ms, eight.windows[w].p95_ms);
    EXPECT_EQ(serial.windows[w].energy_j, eight.windows[w].energy_j);
  }
}

TEST(ShardedSim, MergeConservesLaneTotals) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("shard-flat", 3600.0,
                                  std::vector<double>(4, 250.0));
  const serving::Deployment lane =
      serving::MakeBase(models::Application::kClassification, kLaneGpus);
  ShardedClusterSim sim(lane, zoo, &trace, BaseOptions(/*lanes=*/3));
  sim.AdvanceTo(kSpanSeconds, nullptr);
  const ShardedSummary summary = sim.Summary();

  std::uint64_t arrivals = 0, completions = 0;
  double energy = 0.0;
  for (int i = 0; i < sim.num_lanes(); ++i) {
    arrivals += sim.lane(i).total_arrivals();
    completions += sim.lane(i).total_completions();
    energy += sim.lane(i).total_energy_j();
  }
  EXPECT_EQ(summary.arrivals, arrivals);
  EXPECT_EQ(summary.completions, completions);
  EXPECT_EQ(summary.sim_events, arrivals + completions);
  EXPECT_EQ(summary.total_energy_j, energy);

  // Window-level conservation: every merged window is the index-aligned
  // sum of the lanes' windows.
  ASSERT_EQ(summary.windows.size(), 3u);
  for (std::size_t w = 0; w < summary.windows.size(); ++w) {
    std::uint64_t window_completions = 0;
    double window_carbon = 0.0;
    for (int i = 0; i < sim.num_lanes(); ++i) {
      window_completions += sim.lane(i).windows()[w].completions;
      window_carbon += sim.lane(i).windows()[w].carbon_g;
    }
    EXPECT_EQ(summary.windows[w].completions, window_completions);
    EXPECT_EQ(summary.windows[w].carbon_g, window_carbon);
  }
}

TEST(ShardedSim, GpuFaultsRouteToTheOwningLane) {
  // Knock out every GPU of lane 1 (global indices 2 and 3 of a 2-lane,
  // 2-GPUs-per-lane cluster) for most of the run: lane 1 must lose
  // completions while lane 0 stays bit-identical to the fault-free run.
  ShardedSimOptions faulted = BaseOptions(/*lanes=*/2);
  faulted.base.faults.gpu_faults.push_back({2, 100.0, 800.0});
  faulted.base.faults.gpu_faults.push_back({3, 100.0, 800.0});
  const ShardedSimOptions clean = BaseOptions(/*lanes=*/2);

  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("shard-flat", 3600.0,
                                  std::vector<double>(4, 250.0));
  const serving::Deployment lane =
      serving::MakeBase(models::Application::kClassification, kLaneGpus);
  ShardedClusterSim with_fault(lane, zoo, &trace, faulted);
  ShardedClusterSim no_fault(lane, zoo, &trace, clean);
  with_fault.AdvanceTo(kSpanSeconds, nullptr);
  no_fault.AdvanceTo(kSpanSeconds, nullptr);

  EXPECT_EQ(with_fault.lane(0).total_completions(),
            no_fault.lane(0).total_completions());
  EXPECT_LT(with_fault.lane(1).total_completions(),
            no_fault.lane(1).total_completions());
}

TEST(ShardedSim, FlashCrowdsReplicateToEveryLane) {
  ShardedSimOptions crowded = BaseOptions(/*lanes=*/2);
  crowded.base.faults.flash_crowds.push_back({100.0, 700.0, 2.0});
  const ShardedSimOptions clean = BaseOptions(/*lanes=*/2);

  const ShardedSummary with_crowd = RunSharded(crowded, 1);
  const ShardedSummary without = RunSharded(clean, 1);
  EXPECT_GT(with_crowd.arrivals, without.arrivals);
}

TEST(ShardedSim, RejectsBadConfigurations) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("shard-flat", 3600.0,
                                  std::vector<double>(4, 250.0));
  const serving::Deployment lane =
      serving::MakeBase(models::Application::kClassification, kLaneGpus);

  ShardedSimOptions no_lanes = BaseOptions(/*lanes=*/1);
  no_lanes.num_lanes = 0;
  EXPECT_THROW(ShardedClusterSim(lane, zoo, &trace, no_lanes), CheckError);

  // A gpu fault must name a GPU inside the global range
  // [0, num_lanes * gpus_per_lane).
  ShardedSimOptions out_of_range = BaseOptions(/*lanes=*/2);
  out_of_range.base.faults.gpu_faults.push_back({4, 10.0, 20.0});
  EXPECT_THROW(ShardedClusterSim(lane, zoo, &trace, out_of_range),
               CheckError);
}

TEST(ShardedSim, SingleLaneRunsAndMerges) {
  const ShardedSummary summary = RunSharded(BaseOptions(/*lanes=*/1), 1);
  EXPECT_GT(summary.completions, 0u);
  EXPECT_EQ(summary.num_lanes, 1);
  EXPECT_EQ(summary.windows.size(), 3u);
}

}  // namespace
}  // namespace clover::sim
