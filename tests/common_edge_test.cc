// Edge-case coverage for common/quantile and common/rng: empty and
// single-sample quantile queries, p0/p100 bounds, and cross-run
// reproducibility of seeded RNG streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/quantile.h"
#include "common/rng.h"

namespace clover {
namespace {

// ---------------------------------------------------------------------------
// Quantile estimators: empty and single-sample queries
// ---------------------------------------------------------------------------

TEST(QuantileEdge, EmptyEstimatorsReturnZero) {
  ExactQuantile exact;
  P2Quantile p2(0.95);
  LogHistogramQuantile histogram;
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(exact.Quantile(q), 0.0) << "q=" << q;
    EXPECT_EQ(histogram.Quantile(q), 0.0) << "q=" << q;
  }
  EXPECT_EQ(p2.Value(), 0.0);
  EXPECT_EQ(exact.count(), 0u);
  EXPECT_EQ(p2.count(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(QuantileEdge, SingleSampleIsEveryQuantile) {
  ExactQuantile exact;
  exact.Add(42.0);
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(exact.Quantile(q), 42.0) << "q=" << q;

  P2Quantile p2(0.95);
  p2.Add(42.0);
  EXPECT_DOUBLE_EQ(p2.Value(), 42.0);

  // The log histogram is accurate to its bin width.
  LogHistogramQuantile histogram;
  histogram.Add(42.0);
  EXPECT_NEAR(histogram.Quantile(0.95), 42.0, 42.0 * 0.05);
}

TEST(QuantileEdge, P0AndP100AreMinAndMax) {
  const std::vector<double> samples = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0};
  ExactQuantile exact;
  for (double x : samples) exact.Add(x);
  const double lo = *std::min_element(samples.begin(), samples.end());
  const double hi = *std::max_element(samples.begin(), samples.end());
  EXPECT_DOUBLE_EQ(exact.Quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(exact.Quantile(1.0), hi);
  // All interior quantiles stay within [min, max].
  for (double q = 0.05; q < 1.0; q += 0.05) {
    EXPECT_GE(exact.Quantile(q), lo) << "q=" << q;
    EXPECT_LE(exact.Quantile(q), hi) << "q=" << q;
  }
}

TEST(QuantileEdge, P2StaysWithinSampleRangePastExactThreshold) {
  // Push well past the exact-fallback buffer so marker updates engage.
  P2Quantile p2(0.95);
  RngStream rng(123, "quantile-edge");
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 10000; ++i) {
    const double x = 10.0 + 90.0 * rng.NextDouble();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    p2.Add(x);
  }
  EXPECT_GE(p2.Value(), lo);
  EXPECT_LE(p2.Value(), hi);
  // p95 of U(10,100) is ~95.5; P² should be close.
  EXPECT_NEAR(p2.Value(), 95.5, 2.0);
}

TEST(QuantileEdge, ResetRestoresEmptyBehavior) {
  ExactQuantile exact;
  P2Quantile p2(0.5);
  LogHistogramQuantile histogram;
  for (int i = 1; i <= 100; ++i) {
    exact.Add(i);
    p2.Add(i);
    histogram.Add(i);
  }
  exact.Reset();
  p2.Reset();
  histogram.Reset();
  EXPECT_EQ(exact.count(), 0u);
  EXPECT_EQ(p2.count(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(exact.Quantile(0.95), 0.0);
  EXPECT_EQ(p2.Value(), 0.0);
  EXPECT_EQ(histogram.Quantile(0.95), 0.0);
}

// ---------------------------------------------------------------------------
// RNG streams: cross-run reproducibility and stream independence
// ---------------------------------------------------------------------------

TEST(RngEdge, SeededStreamsReproduceAcrossInstances) {
  RngStream a(2024, "scenario-stream");
  RngStream b(2024, "scenario-stream");
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(a.Next(), b.Next());
  // All derived draw types stay in lockstep too.
  RngStream c(2024, "scenario-stream");
  RngStream d(2024, "scenario-stream");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(c.NextDouble(), d.NextDouble());
    EXPECT_EQ(c.NextBounded(97), d.NextBounded(97));
    EXPECT_DOUBLE_EQ(c.NextExponential(3.5), d.NextExponential(3.5));
    EXPECT_DOUBLE_EQ(c.NextGaussian(), d.NextGaussian());
  }
}

TEST(RngEdge, DifferentSeedsOrNamesDiverge) {
  RngStream base(1, "arrivals");
  RngStream other_seed(2, "arrivals");
  RngStream other_name(1, "jitter");
  int same_seed_matches = 0, same_name_matches = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t x = base.Next();
    same_seed_matches += (x == other_seed.Next()) ? 1 : 0;
    same_name_matches += (x == other_name.Next()) ? 1 : 0;
  }
  EXPECT_EQ(same_seed_matches, 0);
  EXPECT_EQ(same_name_matches, 0);
}

TEST(RngEdge, HashStreamNameIsStable) {
  // The stream-name hash participates in seeding; if it ever changed, every
  // fixed-seed experiment in the repo would silently shift.
  EXPECT_EQ(HashStreamName("poisson-arrivals"),
            HashStreamName("poisson-arrivals"));
  EXPECT_NE(HashStreamName("poisson-arrivals"),
            HashStreamName("service-jitter"));
  EXPECT_NE(HashStreamName(""), HashStreamName("a"));
}

TEST(RngEdge, DistributionsRespectTheirSupports) {
  RngStream rng(7, "support-check");
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(rng.NextBounded(10), 10u);
    EXPECT_EQ(rng.NextBounded(1), 0u);
    EXPECT_GE(rng.NextExponential(2.0), 0.0);
  }
}

}  // namespace
}  // namespace clover
