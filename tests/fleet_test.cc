// Tests for the geo-distributed fleet layer: router policy unit tests
// (conservation of routed load, capacity-margin respect, latency-budget
// filtering), the fleet determinism contract (bit-identical runs across
// 1/2/8 threads), and the headline acceptance property — carbon-greedy
// routing beats the static split on gCO2 over anti-correlated regions at
// equal SLO attainment, with CLOVER adapting inside every region.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "carbon/trace_generator.h"
#include "fleet/fleet_controller.h"
#include "fleet/fleet_sim.h"
#include "fleet/region.h"
#include "fleet/router.h"
#include "models/zoo.h"
#include "sim/arrivals.h"

namespace clover::fleet {
namespace {

RegionSnapshot MakeSnapshot(const std::string& name, double ci,
                            double capacity_qps, double latency_penalty_ms,
                            bool online = true) {
  RegionSnapshot snapshot;
  snapshot.name = name;
  snapshot.online = online;
  snapshot.ci = ci;
  snapshot.capacity_qps = capacity_qps;
  snapshot.latency_penalty_ms = latency_penalty_ms;
  return snapshot;
}

void ExpectConserved(const std::vector<double>& weights) {
  double sum = 0.0;
  for (double w : weights) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// Every policy, over representative snapshot sets (including outages and
// overload), must conserve the routed load exactly.
TEST(Router, ConservationAcrossPoliciesAndStates) {
  const RouterOptions options{1.25, 120.0};
  std::vector<std::vector<RegionSnapshot>> cases;
  cases.push_back({MakeSnapshot("a", 100, 300, 5),
                   MakeSnapshot("b", 250, 300, 30)});
  cases.push_back({MakeSnapshot("a", 100, 300, 5, /*online=*/false),
                   MakeSnapshot("b", 250, 300, 30),
                   MakeSnapshot("c", 180, 150, 45)});
  cases.push_back({MakeSnapshot("a", 100, 50, 5),   // fleet overloaded
                   MakeSnapshot("b", 250, 60, 30)});
  cases.push_back({MakeSnapshot("a", 100, 300, 500),  // none meet budget
                   MakeSnapshot("b", 250, 300, 600)});
  for (RouterPolicy policy :
       {RouterPolicy::kStatic, RouterPolicy::kLeastLoaded,
        RouterPolicy::kCarbonGreedy}) {
    const auto router = MakeRouter(policy);
    for (const auto& snapshots : cases) {
      SCOPED_TRACE(std::string(router->name()));
      for (double total : {40.0, 400.0, 4000.0}) {
        const std::vector<double> weights =
            router->Split(snapshots, total, options);
        ASSERT_EQ(weights.size(), snapshots.size());
        ExpectConserved(weights);
        for (std::size_t i = 0; i < snapshots.size(); ++i) {
          if (!snapshots[i].online) {
            EXPECT_EQ(weights[i], 0.0);
          }
        }
      }
    }
  }
}

TEST(Router, SplitsAreDeterministic) {
  const RouterOptions options{1.25, 120.0};
  const std::vector<RegionSnapshot> snapshots = {
      MakeSnapshot("a", 210, 280, 5), MakeSnapshot("b", 210, 280, 30),
      MakeSnapshot("c", 95, 140, 45)};
  for (RouterPolicy policy :
       {RouterPolicy::kStatic, RouterPolicy::kLeastLoaded,
        RouterPolicy::kCarbonGreedy}) {
    const auto router = MakeRouter(policy);
    const auto a = router->Split(snapshots, 300.0, options);
    const auto b = router->Split(snapshots, 300.0, options);
    EXPECT_EQ(a, b);
  }
}

// Carbon-greedy fills the cleanest region first but only up to its
// capacity margin; the rest spills to the next-cleanest.
TEST(Router, CarbonGreedyRespectsCapacityMargin) {
  const RouterOptions options{1.25, 0.0};
  const std::vector<RegionSnapshot> snapshots = {
      MakeSnapshot("clean", 80, 200, 5), MakeSnapshot("dirty", 300, 200, 5)};
  const auto router = MakeRouter(RouterPolicy::kCarbonGreedy);

  const double total = 250.0;
  const std::vector<double> weights =
      router->Split(snapshots, total, options);
  ExpectConserved(weights);
  const double safe_cap = 200.0 / 1.25;
  EXPECT_NEAR(weights[0] * total, safe_cap, 1e-9);  // clean region capped
  EXPECT_NEAR(weights[1] * total, total - safe_cap, 1e-9);
  EXPECT_GT(weights[0], weights[1]);

  // When demand fits entirely inside the clean region's margin, the dirty
  // region gets nothing.
  const std::vector<double> small =
      router->Split(snapshots, 100.0, options);
  EXPECT_DOUBLE_EQ(small[0], 1.0);
  EXPECT_DOUBLE_EQ(small[1], 0.0);
}

// A region whose network penalty blows the SLO budget is bypassed even if
// it is the cleanest — unless no region fits the budget at all.
TEST(Router, CarbonGreedyHonorsLatencyBudget) {
  RouterOptions options{1.25, 100.0};
  const std::vector<RegionSnapshot> snapshots = {
      MakeSnapshot("clean-far", 60, 300, 450),
      MakeSnapshot("dirty-near", 280, 300, 10)};
  const auto router = MakeRouter(RouterPolicy::kCarbonGreedy);
  const std::vector<double> weights =
      router->Split(snapshots, 200.0, options);
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_DOUBLE_EQ(weights[1], 1.0);

  // With no region inside the budget the router serves anyway (the SLO is
  // already lost; starving the stream would only add an outage).
  options.slo_budget_ms = 5.0;
  const std::vector<double> fallback =
      router->Split(snapshots, 200.0, options);
  ExpectConserved(fallback);
  EXPECT_GT(fallback[0], 0.0);  // cleanest again preferred
}

TEST(Router, LeastLoadedBalancesByCapacityAndBacklog) {
  const RouterOptions options{1.25, 0.0};
  std::vector<RegionSnapshot> snapshots = {
      MakeSnapshot("big", 200, 300, 5), MakeSnapshot("small", 100, 100, 5)};
  const auto router = MakeRouter(RouterPolicy::kLeastLoaded);
  const std::vector<double> weights =
      router->Split(snapshots, 200.0, options);
  ExpectConserved(weights);
  EXPECT_NEAR(weights[0], 0.75, 1e-12);  // proportional to capacity
  EXPECT_NEAR(weights[1], 0.25, 1e-12);

  // A backlog derates the loaded region.
  snapshots[0].queue_depth = 600.0;  // 2 s of work at capacity
  const std::vector<double> derated =
      router->Split(snapshots, 200.0, options);
  ExpectConserved(derated);
  EXPECT_LT(derated[0], weights[0]);
}

TEST(Router, StaticUsesPriorsAndRoutesAroundOutages) {
  const RouterOptions options{1.25, 0.0};
  std::vector<RegionSnapshot> snapshots = {
      MakeSnapshot("a", 100, 300, 5), MakeSnapshot("b", 300, 300, 30),
      MakeSnapshot("c", 200, 300, 45)};
  snapshots[0].static_weight = 2.0;
  snapshots[1].static_weight = 1.0;
  snapshots[2].static_weight = 1.0;
  const auto router = MakeRouter(RouterPolicy::kStatic);
  const std::vector<double> weights =
      router->Split(snapshots, 100.0, options);
  EXPECT_NEAR(weights[0], 0.5, 1e-12);
  EXPECT_NEAR(weights[1], 0.25, 1e-12);
  EXPECT_NEAR(weights[2], 0.25, 1e-12);

  snapshots[0].online = false;
  const std::vector<double> rerouted =
      router->Split(snapshots, 100.0, options);
  ExpectConserved(rerouted);
  EXPECT_DOUBLE_EQ(rerouted[0], 0.0);
  EXPECT_NEAR(rerouted[1], 0.5, 1e-12);
  EXPECT_NEAR(rerouted[2], 0.5, 1e-12);
}

TEST(Region, SeedsAreDistinctAndStable) {
  EXPECT_EQ(RegionSeed(1, 0), RegionSeed(1, 0));
  EXPECT_NE(RegionSeed(1, 0), RegionSeed(1, 1));
  EXPECT_NE(RegionSeed(1, 0), RegionSeed(2, 0));
}

// SetArrivalRate(0) silences a cluster's stream; restoring the rate brings
// arrivals back — the mechanism behind routed-around outages.
TEST(Region, ArrivalRateCanBeSilencedAndRestored) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const carbon::CarbonTrace trace("flat", 3600.0,
                                  std::vector<double>(48, 250.0));
  sim::SimOptions options;
  options.arrival_rate_qps = 50.0;
  options.seed = 5;
  sim::ClusterSim sim(
      serving::MakeBase(models::Application::kClassification, 2), zoo,
      &trace, options);
  sim.AdvanceTo(600.0);
  const std::uint64_t before = sim.total_arrivals();
  EXPECT_GT(before, 0u);

  sim.SetArrivalRate(0.0);
  sim.AdvanceTo(1200.0);
  EXPECT_EQ(sim.total_arrivals(), before);  // silence
  EXPECT_EQ(sim.total_completions(), before);  // and fully drained

  sim.SetArrivalRate(50.0);
  sim.AdvanceTo(1800.0);
  EXPECT_GT(sim.total_arrivals(), before);  // restored
}

FleetConfig SmallCloverFleet(int threads) {
  FleetConfig config;
  config.app = models::Application::kClassification;
  config.regions = RegionsFromPresets({"us-west", "ap-northeast"},
                                      /*gpus_per_region=*/2);
  config.duration_hours = 3.0;
  config.scheme = core::Scheme::kClover;
  config.router = RouterPolicy::kCarbonGreedy;
  config.seed = 3;
  config.threads = threads;
  return config;
}

// The fleet determinism contract (acceptance criterion): thread count
// changes wall time, never results — CLOVER controllers and all.
TEST(FleetDeterminism, BitIdenticalAcrossOneTwoEightThreads) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const FleetReport one = RunFleet(SmallCloverFleet(1), zoo);
  const FleetReport two = RunFleet(SmallCloverFleet(2), zoo);
  const FleetReport eight = RunFleet(SmallCloverFleet(8), zoo);
  EXPECT_TRUE(FleetReportsBitIdentical(one, two));
  EXPECT_TRUE(FleetReportsBitIdentical(one, eight));
  EXPECT_GT(one.fleet.completions, 0u);
}

// Same config, same seed, same thread count: trivially reproducible too.
TEST(FleetDeterminism, RepeatRunsAreBitIdentical) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const FleetReport a = RunFleet(SmallCloverFleet(2), zoo);
  const FleetReport b = RunFleet(SmallCloverFleet(2), zoo);
  EXPECT_TRUE(FleetReportsBitIdentical(a, b));
}

// The headline acceptance property on the anti-correlated two-region
// setting with CLOVER inside each region: carbon-greedy routing emits
// measurably less gCO2 than the static split, at equal-or-better SLO
// attainment and with both fleets inside the SLO budget overall.
TEST(FleetRouting, AntiCorrelatedCarbonGreedyBeatsStaticAtEqualSlo) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  FleetConfig config = SmallCloverFleet(2);
  config.duration_hours = 6.0;
  config.regions = RegionsFromPresets({"us-west", "ap-northeast"},
                                      /*gpus_per_region=*/3);

  config.router = RouterPolicy::kCarbonGreedy;
  const FleetReport greedy = RunFleet(config, zoo);
  config.router = RouterPolicy::kStatic;
  const FleetReport static_split = RunFleet(config, zoo);

  const double save_pct =
      greedy.fleet.CarbonSavePctVs(static_split.fleet);
  EXPECT_GE(save_pct, 2.0) << "spatial arbitrage did not pay";
  EXPECT_LE(greedy.fleet.overall_p95_ms, greedy.slo_budget_ms);
  EXPECT_LE(static_split.fleet.overall_p95_ms, static_split.slo_budget_ms);
  // SLO parity, not merely "no collapse": since the router's latency-
  // headroom derate, greedy and static attainment agree to within one
  // 300 s window of the 6 h x 2-region run (1/72 ~= 0.014, rounded up).
  EXPECT_NEAR(greedy.slo_attainment, static_split.slo_attainment, 0.02);
  // Quality holds: fleet accuracy within the family's published range and
  // not materially below the static split's.
  EXPECT_GE(greedy.fleet.weighted_accuracy,
            static_split.fleet.weighted_accuracy - 1.0);
}

// Sharing one evaluation-cache store across regions serializes the region
// step but must keep runs reproducible, and the regional controllers must
// actually pool their evaluations.
TEST(FleetSharedCache, DeterministicWithCrossRegionReuse) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  FleetConfig config = SmallCloverFleet(4);
  config.share_eval_cache = true;
  const FleetReport a = RunFleet(config, zoo);
  const FleetReport b = RunFleet(config, zoo);
  EXPECT_TRUE(FleetReportsBitIdentical(a, b));
  EXPECT_GT(a.fleet.completions, 0u);
  // Both regions report cache state from the one shared store.
  ASSERT_TRUE(a.regions[0].controller.has_value());
  ASSERT_TRUE(a.regions[1].controller.has_value());
  EXPECT_EQ(a.regions[0].controller->cache_size,
            a.regions[1].controller->cache_size);
  EXPECT_GT(a.regions[0].controller->cache_size, 0u);
}

// Controller snapshots surface per-region state without friend access.
TEST(FleetReporting, ControllerSnapshotsDescribeRegions) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const FleetReport report = RunFleet(SmallCloverFleet(1), zoo);
  ASSERT_EQ(report.regions.size(), 2u);
  for (const RegionReport& region : report.regions) {
    ASSERT_TRUE(region.controller.has_value());
    const core::ControllerSnapshot& snapshot = *region.controller;
    EXPECT_EQ(snapshot.invocations,
              static_cast<int>(region.report.optimizations.size()));
    EXPECT_TRUE(snapshot.last_committed.has_value());
    if (snapshot.invocations > 0) {
      EXPECT_GT(snapshot.last_ci, 0.0);
      EXPECT_GT(snapshot.cache_size, 0u);
    }
    EXPECT_DOUBLE_EQ(snapshot.total_optimization_seconds,
                     region.report.optimization_seconds);
  }
  // Weight history covers the initial split plus one entry per interval.
  EXPECT_EQ(report.weight_history.size(),
            1u + static_cast<std::size_t>(3.0 * 3600.0 / 300.0));
}

}  // namespace
}  // namespace clover::fleet
