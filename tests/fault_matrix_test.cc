// Fault scenarios in the scenario matrix (sim/fault_injector.h): GPU
// fail-stop windows, flash crowds and carbon-feed dropouts replayed through
// the full pipeline, with invariants on bounded SLO degradation, recovery
// to steady state, request conservation, determinism, and — at fleet level
// — rerouting around an injected regional fault while SLO attainment holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "core/harness.h"
#include "fleet/fleet_sim.h"
#include "models/zoo.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"
#include "sim/fault_injector.h"
#include "testing/proptest.h"
#include "testing/scenario.h"
#include "testing/trace_fixtures.h"

namespace clover {
namespace {

using testing::Scenario;

// Median per-window p95 over windows with completions in [from_s, to_s).
double MedianWindowP95(const std::vector<sim::WindowRecord>& windows,
                       double from_s, double to_s) {
  std::vector<double> p95s;
  for (const sim::WindowRecord& window : windows)
    if (window.start_s >= from_s && window.start_s < to_s &&
        window.completions > 0)
      p95s.push_back(window.p95_ms);
  CLOVER_CHECK_MSG(!p95s.empty(), "no served windows in ["
                                      << from_s << ", " << to_s << ")");
  std::sort(p95s.begin(), p95s.end());
  return p95s[p95s.size() / 2];
}

double CompletionRatio(const core::RunReport& report) {
  return report.arrivals
             ? static_cast<double>(report.completions) /
                   static_cast<double>(report.arrivals)
             : 0.0;
}

// ---------------------------------------------------------------------------
// Fault-injector unit behavior.
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleValidationCatchesMalformedWindows) {
  sim::FaultSchedule schedule;
  schedule.gpu_faults.push_back({0, 100.0, 100.0});  // empty window
  EXPECT_THROW(schedule.Validate(), CheckError);
  schedule.gpu_faults.clear();
  schedule.flash_crowds.push_back({0.0, 60.0, 0.5});  // lull, not a crowd
  EXPECT_THROW(schedule.Validate(), CheckError);
  schedule.flash_crowds.clear();
  schedule.rtt_spikes.push_back({0.0, 60.0, -5.0});
  EXPECT_THROW(schedule.Validate(), CheckError);
}

TEST(FaultInjector, ProfileValidationRejectsEveryBadKnob) {
  // Regression: GenerateFaultSchedule once sanitized nothing, so a negative
  // or NaN rate silently produced an empty (or endless) schedule instead of
  // failing loudly. Every rate/mean/multiplier knob is now validated.
  sim::FaultProfile good;
  good.duration_s = HoursToSeconds(24.0);
  good.num_gpus = 4;
  good.gpu_faults_per_hour = 0.5;
  good.flash_crowds_per_hour = 0.5;
  good.trace_dropouts_per_hour = 0.2;
  good.rtt_spikes_per_hour = 1.0;
  EXPECT_NO_THROW(sim::GenerateFaultSchedule(good, 7));

  const auto expect_rejected = [&](auto&& corrupt) {
    sim::FaultProfile bad = good;
    corrupt(bad);
    EXPECT_THROW(sim::GenerateFaultSchedule(bad, 7), CheckError);
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_rejected([&](sim::FaultProfile& p) { p.gpu_faults_per_hour = -1.0; });
  expect_rejected([&](sim::FaultProfile& p) { p.gpu_faults_per_hour = nan; });
  expect_rejected([&](sim::FaultProfile& p) { p.mean_gpu_outage_s = -5.0; });
  expect_rejected([&](sim::FaultProfile& p) { p.mean_gpu_outage_s = inf; });
  expect_rejected(
      [&](sim::FaultProfile& p) { p.flash_crowds_per_hour = inf; });
  expect_rejected([&](sim::FaultProfile& p) { p.mean_flash_crowd_s = nan; });
  expect_rejected(
      [&](sim::FaultProfile& p) { p.flash_crowd_multiplier = 1.0; });
  expect_rejected(
      [&](sim::FaultProfile& p) { p.flash_crowd_multiplier = nan; });
  expect_rejected(
      [&](sim::FaultProfile& p) { p.trace_dropouts_per_hour = -0.1; });
  expect_rejected(
      [&](sim::FaultProfile& p) { p.mean_trace_dropout_s = -1.0; });
  expect_rejected([&](sim::FaultProfile& p) { p.rtt_spikes_per_hour = nan; });
  expect_rejected([&](sim::FaultProfile& p) { p.mean_rtt_spike_s = inf; });
  expect_rejected([&](sim::FaultProfile& p) { p.rtt_spike_ms = -10.0; });
  expect_rejected([&](sim::FaultProfile& p) { p.rtt_spike_ms = nan; });
  expect_rejected([&](sim::FaultProfile& p) { p.duration_s = -1.0; });
  expect_rejected([&](sim::FaultProfile& p) { p.duration_s = inf; });
  expect_rejected([&](sim::FaultProfile& p) { p.num_gpus = 0; });
}

TEST(FaultInjector, GeneratorIsSeededAndCategoryIndependent) {
  sim::FaultProfile profile;
  profile.duration_s = HoursToSeconds(24.0);
  profile.num_gpus = 8;
  profile.gpu_faults_per_hour = 0.5;
  profile.flash_crowds_per_hour = 0.5;
  profile.trace_dropouts_per_hour = 0.2;
  profile.rtt_spikes_per_hour = 1.0;

  const sim::FaultSchedule a = sim::GenerateFaultSchedule(profile, 7);
  const sim::FaultSchedule b = sim::GenerateFaultSchedule(profile, 7);
  EXPECT_EQ(a.gpu_faults.size(), b.gpu_faults.size());
  for (std::size_t i = 0; i < a.gpu_faults.size(); ++i) {
    EXPECT_EQ(a.gpu_faults[i].gpu_index, b.gpu_faults[i].gpu_index);
    EXPECT_EQ(a.gpu_faults[i].start_s, b.gpu_faults[i].start_s);
    EXPECT_EQ(a.gpu_faults[i].end_s, b.gpu_faults[i].end_s);
  }
  EXPECT_FALSE(a.Empty());

  // Zeroing one category's rate must not perturb the others (independent
  // named streams).
  sim::FaultProfile no_crowds = profile;
  no_crowds.flash_crowds_per_hour = 0.0;
  const sim::FaultSchedule c = sim::GenerateFaultSchedule(no_crowds, 7);
  EXPECT_TRUE(c.flash_crowds.empty());
  ASSERT_EQ(c.gpu_faults.size(), a.gpu_faults.size());
  for (std::size_t i = 0; i < a.gpu_faults.size(); ++i)
    EXPECT_EQ(c.gpu_faults[i].start_s, a.gpu_faults[i].start_s);

  // Windows within a category never overlap (renewal construction).
  for (std::size_t i = 1; i < a.rtt_spikes.size(); ++i)
    EXPECT_GE(a.rtt_spikes[i].start_s, a.rtt_spikes[i - 1].end_s);
}

TEST(FaultInjector, TraceDropoutRepairCarriesLastObservationForward) {
  const carbon::CarbonTrace trace("t", 100.0,
                                  {10.0, 20.0, 30.0, 40.0, 50.0});
  // Window [150, 350) knocks out samples at t=200 and t=300.
  const std::vector<sim::TraceDropout> dropouts = {{150.0, 350.0}};
  const std::vector<double> corrupted =
      sim::CorruptTraceValues(trace, dropouts);
  EXPECT_TRUE(std::isnan(corrupted[2]));
  EXPECT_TRUE(std::isnan(corrupted[3]));
  EXPECT_DOUBLE_EQ(corrupted[1], 20.0);

  const carbon::CarbonTrace repaired =
      sim::ApplyTraceDropouts(trace, dropouts);
  const std::vector<double> expected = {10.0, 20.0, 20.0, 20.0, 50.0};
  EXPECT_EQ(repaired.values(), expected);

  // A gap at the start backfills from the first valid sample.
  const carbon::CarbonTrace leading =
      sim::ApplyTraceDropouts(trace, {{0.0, 250.0}});
  const std::vector<double> expected_leading = {40.0, 40.0, 40.0, 40.0,
                                                50.0};
  EXPECT_EQ(leading.values(), expected_leading);

  // No valid sample at all is unrepairable.
  EXPECT_THROW(
      sim::RepairTraceValues(std::vector<double>(
          3, std::numeric_limits<double>::quiet_NaN())),
      CheckError);
}

TEST(FaultInjector, RttPenaltyAddsActiveSpikes) {
  const std::vector<sim::RttSpike> spikes = {{100.0, 200.0, 30.0},
                                             {150.0, 250.0, 10.0}};
  EXPECT_DOUBLE_EQ(sim::RttPenaltyAt(spikes, 5.0, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(sim::RttPenaltyAt(spikes, 5.0, 120.0), 35.0);
  EXPECT_DOUBLE_EQ(sim::RttPenaltyAt(spikes, 5.0, 180.0), 45.0);
  EXPECT_DOUBLE_EQ(sim::RttPenaltyAt(spikes, 5.0, 220.0), 15.0);
  EXPECT_DOUBLE_EQ(sim::RttPenaltyAt(spikes, 5.0, 300.0), 5.0);
}

// ---------------------------------------------------------------------------
// Single-cluster fault scenarios through the scenario-matrix runner.
// ---------------------------------------------------------------------------

// One GPU of four fail-stops for an hour. The arrival rate is sized for 3
// GPUs at the paper's 75% point, so the healthy cluster runs light
// (~56%) and the degraded cluster sits exactly at the calibration point —
// stressed but stable.
Scenario GpuOutageScenario() {
  Scenario scenario;
  scenario.name = "fault_gpu_outage";
  scenario.trace = testing::TraceKind::kCisoMarch;
  scenario.duration_hours = 6.0;
  scenario.num_gpus = 4;
  scenario.sizing_gpus = 3;
  scenario.seed = 11;
  scenario.faults.gpu_faults.push_back(
      {/*gpu_index=*/1, HoursToSeconds(2.0), HoursToSeconds(3.0)});
  return scenario;
}

// The offered rate doubles for 40 minutes on a cluster sized at 2-of-4
// GPUs (37.5% steady): the crowd pushes it to the 75% calibration point.
Scenario FlashCrowdScenario() {
  Scenario scenario;
  scenario.name = "fault_flash_crowd";
  scenario.trace = testing::TraceKind::kStep;
  scenario.duration_hours = 6.0;
  scenario.num_gpus = 4;
  scenario.sizing_gpus = 2;
  scenario.seed = 13;
  scenario.faults.flash_crowds.push_back(
      {HoursToSeconds(2.0), HoursToSeconds(2.0) + MinutesToSeconds(40.0),
       2.0});
  return scenario;
}

struct FaultPhases {
  double fault_start_s = 0.0;
  double fault_end_s = 0.0;
};

// Shared invariants: every request eventually served, degradation during
// the fault stays within `degraded_bound` x the pre-fault steady median,
// and the post-recovery tail returns to `recovered_bound` x steady.
void CheckFaultInvariants(const Scenario& scenario, const FaultPhases& phases,
                          const core::RunReport& report,
                          double degraded_bound, double recovered_bound) {
  SCOPED_TRACE(scenario.name + " scheme " +
               std::string(core::SchemeName(report.scheme)));
  EXPECT_GE(CompletionRatio(report), 0.97);

  const double steady_p95 =
      MedianWindowP95(report.windows, 0.0, phases.fault_start_s);
  const double degraded_p95 = MedianWindowP95(
      report.windows, phases.fault_start_s, phases.fault_end_s);
  // One settle window after recovery before judging steady state again.
  const double recovered_from = phases.fault_end_s + 600.0;
  const double recovered_p95 = MedianWindowP95(
      report.windows, recovered_from, HoursToSeconds(scenario.duration_hours));

  EXPECT_GT(steady_p95, 0.0);
  EXPECT_LE(degraded_p95, degraded_bound * steady_p95)
      << "degraded p95 " << degraded_p95 << " ms vs steady " << steady_p95
      << " ms";
  EXPECT_LE(recovered_p95, recovered_bound * steady_p95)
      << "recovered p95 " << recovered_p95 << " ms vs steady " << steady_p95
      << " ms";
}

TEST(FaultMatrix, GpuOutageDegradesBoundedAndRecovers) {
  const Scenario scenario = GpuOutageScenario();
  const carbon::CarbonTrace trace = testing::MakeScenarioTrace(scenario);
  core::ExperimentHarness harness(&models::DefaultZoo());
  const testing::ScenarioRun run =
      testing::RunScenario(harness, scenario, trace);
  const FaultPhases phases = {scenario.faults.gpu_faults[0].start_s,
                              scenario.faults.gpu_faults[0].end_s};
  // Losing 1 of 4 GPUs moves utilization ~0.56 -> 0.75: the tail grows but
  // must stay within an order of magnitude of steady, and fully recover.
  CheckFaultInvariants(scenario, phases, run.base, /*degraded_bound=*/8.0,
                       /*recovered_bound=*/1.5);
  CheckFaultInvariants(scenario, phases, run.clover, /*degraded_bound=*/8.0,
                       /*recovered_bound=*/1.5);
}

TEST(FaultMatrix, FlashCrowdDegradesBoundedAndRecovers) {
  const Scenario scenario = FlashCrowdScenario();
  const carbon::CarbonTrace trace = testing::MakeScenarioTrace(scenario);
  core::ExperimentHarness harness(&models::DefaultZoo());
  const testing::ScenarioRun run =
      testing::RunScenario(harness, scenario, trace);
  const FaultPhases phases = {scenario.faults.flash_crowds[0].start_s,
                              scenario.faults.flash_crowds[0].end_s};
  CheckFaultInvariants(scenario, phases, run.base, /*degraded_bound=*/8.0,
                       /*recovered_bound=*/1.5);
  CheckFaultInvariants(scenario, phases, run.clover, /*degraded_bound=*/8.0,
                       /*recovered_bound=*/1.5);
}

TEST(FaultMatrix, TraceDropoutRunsOnRepairedFeed) {
  // A CLOVER run whose carbon feed goes dark for 90 minutes across a step
  // edge: the pipeline must hold the last reading (no crash, no NaNs) and
  // still serve everything.
  Scenario scenario;
  scenario.name = "fault_trace_dropout";
  scenario.trace = testing::TraceKind::kStep;
  scenario.duration_hours = 6.0;
  scenario.num_gpus = 4;
  scenario.seed = 17;
  scenario.faults.trace_dropouts.push_back(
      {HoursToSeconds(1.0), HoursToSeconds(2.5)});
  const carbon::CarbonTrace trace = testing::MakeScenarioTrace(scenario);
  core::ExperimentHarness harness(&models::DefaultZoo());
  const testing::ScenarioRun run =
      testing::RunScenario(harness, scenario, trace);
  EXPECT_GE(CompletionRatio(run.base), 0.97);
  EXPECT_GE(CompletionRatio(run.clover), 0.97);
  for (const sim::WindowRecord& window : run.clover.windows) {
    EXPECT_TRUE(std::isfinite(window.ci));
    EXPECT_TRUE(std::isfinite(window.carbon_g));
  }
  // The dropout is observable: during the dark window every CLOVER report
  // window carries the held reading, i.e. the CI at the dropout start.
  const double held = trace.At(HoursToSeconds(1.0) - 1.0);
  for (const sim::WindowRecord& window : run.clover.windows) {
    if (window.start_s >= HoursToSeconds(1.0) &&
        window.start_s < HoursToSeconds(2.5)) {
      EXPECT_DOUBLE_EQ(window.ci, held);
    }
  }
}

// ---------------------------------------------------------------------------
// Property: random fault schedules preserve the simulator's invariants.
// ---------------------------------------------------------------------------

struct FaultCase {
  sim::FaultSchedule schedule;
  std::uint64_t sim_seed = 1;
};

std::string DescribeFaultCase(const FaultCase& c) {
  std::ostringstream os;
  os << "{sim_seed=" << c.sim_seed << ", gpu_faults=[";
  for (const sim::GpuFault& f : c.schedule.gpu_faults)
    os << " g" << f.gpu_index << "@[" << f.start_s << "," << f.end_s << ")";
  os << " ], crowds=[";
  for (const sim::FlashCrowd& f : c.schedule.flash_crowds)
    os << " x" << f.rate_multiplier << "@[" << f.start_s << "," << f.end_s
       << ")";
  os << " ]}";
  return os.str();
}

TEST(FaultMatrix, RandomSchedulesConserveRequestsAndStayDeterministic) {
  constexpr double kSpanS = 2700.0;  // 45 simulated minutes
  constexpr int kGpus = 4;

  testing::prop::Domain<FaultCase> domain;
  domain.generate = [](testing::prop::Gen& gen) {
    sim::FaultProfile profile;
    profile.duration_s = kSpanS;
    profile.num_gpus = kGpus;
    profile.gpu_faults_per_hour = gen.Uniform(0.5, 4.0);
    profile.mean_gpu_outage_s = gen.Uniform(60.0, 600.0);
    profile.flash_crowds_per_hour = gen.Uniform(0.5, 4.0);
    profile.mean_flash_crowd_s = gen.Uniform(60.0, 400.0);
    profile.flash_crowd_multiplier = gen.Uniform(1.2, 2.5);
    FaultCase c;
    c.schedule = sim::GenerateFaultSchedule(profile, gen.rng().Next());
    c.sim_seed = gen.rng().Next();
    return c;
  };
  domain.shrink = [](const FaultCase& witness) {
    // Drop one fault at a time: the minimal witness names the one window
    // that breaks the invariant.
    std::vector<FaultCase> candidates;
    for (std::size_t i = 0; i < witness.schedule.gpu_faults.size(); ++i) {
      FaultCase candidate = witness;
      candidate.schedule.gpu_faults.erase(
          candidate.schedule.gpu_faults.begin() +
          static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    for (std::size_t i = 0; i < witness.schedule.flash_crowds.size(); ++i) {
      FaultCase candidate = witness;
      candidate.schedule.flash_crowds.erase(
          candidate.schedule.flash_crowds.begin() +
          static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
    return candidates;
  };
  domain.describe = DescribeFaultCase;

  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::Application app = models::Application::kClassification;
  static const carbon::CarbonTrace kFlat("fault-flat", 3600.0,
                                         std::vector<double>(4, 250.0));
  auto run_once = [&](const FaultCase& c) {
    sim::SimOptions options;
    options.arrival_rate_qps = sim::SizeArrivalRate(zoo, app, kGpus, 0.6);
    options.seed = c.sim_seed;
    options.faults = c.schedule;
    sim::ClusterSim sim(serving::MakeBase(app, kGpus), zoo, &kFlat, options);
    sim.AdvanceTo(kSpanS);
    return sim;
  };

  testing::prop::Config config;
  config.name = "fault-conservation";
  config.seed = 23;
  config.iterations = 12;
  const auto outcome = testing::prop::Check<FaultCase>(
      config, domain,
      [&](const FaultCase& c) -> std::optional<std::string> {
        const sim::ClusterSim sim = run_once(c);
        const std::uint64_t accounted =
            sim.total_completions() + sim.queue_depth() +
            static_cast<std::uint64_t>(sim.num_busy_instances());
        if (sim.total_arrivals() != accounted) {
          std::ostringstream os;
          os << "request leak: " << sim.total_arrivals() << " arrivals vs "
             << accounted << " accounted (completions "
             << sim.total_completions() << ", queued " << sim.queue_depth()
             << ", busy " << sim.num_busy_instances() << ")";
          return os.str();
        }
        for (const sim::WindowRecord& window : sim.windows()) {
          if (!(window.energy_j > 0.0) || !std::isfinite(window.p95_ms)) {
            std::ostringstream os;
            os << "window at " << window.start_s << "s has energy "
               << window.energy_j << " J, p95 " << window.p95_ms << " ms";
            return os.str();
          }
        }
        // Replaying the same case must be bit-identical.
        const sim::ClusterSim twin = run_once(c);
        if (twin.total_completions() != sim.total_completions() ||
            twin.total_wait_seconds() != sim.total_wait_seconds() ||
            twin.total_busy_seconds() != sim.total_busy_seconds())
          return "replay diverged from first run";
        return std::nullopt;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report;
}

// ---------------------------------------------------------------------------
// Fleet: reroute around an injected regional fault; fault runs bit-identical
// across thread counts.
// ---------------------------------------------------------------------------

TEST(FaultMatrix, FleetReroutesAroundRegionalGpuFaults) {
  // Region 1 (eu-west) loses 2 of its 3 GPUs for 90 minutes. Under the
  // capacity-aware least-loaded router the fleet must shift its share to
  // the survivors — and fleet SLO attainment must hold inside the same
  // envelope the outage scenario uses.
  fleet::FleetConfig config;
  config.app = models::Application::kClassification;
  config.regions = fleet::RegionsFromPresets(
      {"us-west", "eu-west", "ap-northeast"}, /*gpus_per_region=*/3);
  const double fault_start = HoursToSeconds(2.0);
  const double fault_end = HoursToSeconds(3.5);
  config.regions[1].faults.gpu_faults.push_back({0, fault_start, fault_end});
  config.regions[1].faults.gpu_faults.push_back({1, fault_start, fault_end});
  config.duration_hours = 6.0;
  config.scheme = core::Scheme::kBase;
  config.router = fleet::RouterPolicy::kLeastLoaded;
  config.utilization_target = 0.45;
  // Degraded-operation envelope: the SLA tail is calibrated on a 3-GPU
  // cluster, but during the fault eu-west serves its (rerouted-down) share
  // on a single GPU — an M/M/1-shaped tail, ~2.5x the healthy cluster's
  // p95 at equal utilization, plus the region's network penalty. 2x the
  // SLA absorbs that physics; the attainment floor still fails if the
  // router keeps overloading the crippled region.
  config.slo_budget_factor = 2.0;
  config.seed = 11;

  const fleet::FleetReport report =
      fleet::RunFleet(config, models::DefaultZoo());
  EXPECT_GE(report.slo_attainment, 0.90);

  // weight_history[w] is the rebalance at t = w * control_interval.
  double before = 0.0, during = 0.0;
  int before_n = 0, during_n = 0;
  for (std::size_t w = 0; w < report.weight_history.size(); ++w) {
    const double t =
        static_cast<double>(w) * config.control_interval_s;
    const double weight = report.weight_history[w][1];
    if (t < fault_start) {
      before += weight;
      ++before_n;
    } else if (t >= fault_start && t < fault_end) {
      during += weight;
      ++during_n;
    }
    // Router contract: weights conserve the stream at every rebalance.
    double total = 0.0;
    for (double v : report.weight_history[w]) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  ASSERT_GT(before_n, 0);
  ASSERT_GT(during_n, 0);
  before /= before_n;
  during /= during_n;
  // 1 of 3 GPUs left -> the region's derated capacity (and so its
  // least-loaded share) drops to about a third.
  EXPECT_LT(during, 0.6 * before)
      << "faulted region kept weight " << during << " (was " << before
      << ")";
  EXPECT_GE(CompletionRatio(report.fleet), 0.97);
}

TEST(FaultMatrix, FaultedFleetRunsBitIdenticalAcrossThreadCounts) {
  // The acceptance gate: a fleet run composing every fault type — regional
  // GPU fail-stop, flash crowd, carbon-feed dropout, RTT spike — must be
  // bit-identical at 1, 2 and 8 threads.
  auto make_config = [](int threads) {
    fleet::FleetConfig config;
    config.app = models::Application::kClassification;
    config.regions = fleet::RegionsFromPresets({"us-west", "ap-northeast"},
                                               /*gpus_per_region=*/2);
    config.regions[0].faults.gpu_faults.push_back(
        {0, HoursToSeconds(1.0), HoursToSeconds(1.5)});
    config.regions[0].faults.rtt_spikes.push_back(
        {HoursToSeconds(0.5), HoursToSeconds(1.0), 40.0});
    config.regions[1].faults.flash_crowds.push_back(
        {HoursToSeconds(1.0), HoursToSeconds(1.5), 1.8});
    config.regions[1].faults.trace_dropouts.push_back(
        {HoursToSeconds(0.5), HoursToSeconds(2.0)});
    config.duration_hours = 3.0;
    config.scheme = core::Scheme::kClover;
    config.router = fleet::RouterPolicy::kCarbonGreedy;
    config.seed = 29;
    config.threads = threads;
    return config;
  };
  const models::ModelZoo& zoo = models::DefaultZoo();
  const fleet::FleetReport serial = fleet::RunFleet(make_config(1), zoo);
  const fleet::FleetReport two = fleet::RunFleet(make_config(2), zoo);
  const fleet::FleetReport eight = fleet::RunFleet(make_config(8), zoo);
  EXPECT_TRUE(fleet::FleetReportsBitIdentical(serial, two));
  EXPECT_TRUE(fleet::FleetReportsBitIdentical(serial, eight));
  EXPECT_GT(serial.fleet.completions, 0u);
}

}  // namespace
}  // namespace clover
