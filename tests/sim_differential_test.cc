// Differential verification of the discrete-event simulator against the
// closed-form M/M/c oracles (sim/analytic.h).
//
// Setup: a BASE deployment of c identical full-GPU instances under
// ServiceModel::kExponential is exactly an M/M/c queue — Poisson arrivals,
// exponential service, one FIFO queue, c homogeneous servers. The test
// sweeps a (c, rho) grid, runs the simulator past a warmup, and requires
// the measured utilization, wait probability, mean wait and mean sojourn
// time to match the oracle within the documented tolerances below. This is
// the permanent regression gate for simulator bias: a systematic error in
// the event loop, the arrival process, or the service draw shifts these
// statistics and fails the grid.
//
// Tolerances: the run measures ~kTargetCompletions requests per point, but
// queueing statistics are autocorrelated (effective sample size shrinks as
// rho -> 1), so bounds are a relative band plus an absolute floor for the
// near-zero low-rho waits. They were chosen to pass with >= 4x margin at
// the pinned seeds while still catching a few-percent systematic bias.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "carbon/trace.h"
#include "common/units.h"
#include "mig/slice_type.h"
#include "models/zoo.h"
#include "perf/perf_model.h"
#include "serving/deployment.h"
#include "sim/analytic.h"
#include "sim/cluster_sim.h"
#include "testing/proptest.h"
#include "testing/triage_gtest.h"

namespace clover::sim {
namespace {

constexpr double kTargetCompletions = 200000.0;

// Measured steady-state statistics over the post-warmup span.
struct MeasuredMmc {
  double utilization = 0.0;
  double wait_probability = 0.0;
  double mean_wait_s = 0.0;
  double mean_sojourn_s = 0.0;
  std::uint64_t completions = 0;
};

double ServiceRatePerServer() {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::ModelFamily& family =
      zoo.ForApplication(models::Application::kClassification);
  return 1.0 / MsToSeconds(perf::PerfModel::LatencyMs(
                   family, family.Largest(), mig::SliceType::k7g));
}

MeasuredMmc RunMmcSim(int servers, double rho, std::uint64_t seed,
                      double target_completions) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::Application app = models::Application::kClassification;
  const double mu = ServiceRatePerServer();
  const double lambda = rho * servers * mu;

  // The trace only feeds carbon accounting, which is irrelevant here.
  static const carbon::CarbonTrace kFlat("diff-flat", 3600.0,
                                         std::vector<double>(4000, 250.0));
  SimOptions options;
  options.arrival_rate_qps = lambda;
  options.seed = seed;
  options.window_seconds = 600.0;
  options.service_model = ServiceModel::kExponential;
  ClusterSim sim(serving::MakeBase(app, servers), zoo, &kFlat, options);

  // Warmup past the transient (empty-system start), then measure deltas.
  const double warmup_s = 3000.0 / lambda + 50.0 / mu;
  sim.AdvanceTo(warmup_s);
  const double busy0 = sim.total_busy_seconds();
  const double wait0 = sim.total_wait_seconds();
  const std::uint64_t starts0 = sim.total_service_starts();
  const std::uint64_t waited0 = sim.total_waited();
  const std::uint64_t completions0 = sim.total_completions();
  const double t0 = sim.now();

  const double span_s = target_completions / lambda;
  sim.AdvanceTo(warmup_s + span_s);

  MeasuredMmc measured;
  const double span = sim.now() - t0;
  const auto starts = sim.total_service_starts() - starts0;
  measured.completions = sim.total_completions() - completions0;
  measured.utilization = (sim.total_busy_seconds() - busy0) /
                         (static_cast<double>(servers) * span);
  measured.wait_probability =
      starts ? static_cast<double>(sim.total_waited() - waited0) /
                   static_cast<double>(starts)
             : 0.0;
  measured.mean_wait_s =
      starts ? (sim.total_wait_seconds() - wait0) /
                   static_cast<double>(starts)
             : 0.0;
  measured.mean_sojourn_s = measured.mean_wait_s + 1.0 / mu;
  return measured;
}

analytic::MmcMetrics OracleFor(int servers, double rho) {
  analytic::MmcConfig config;
  config.servers = servers;
  config.service_rate = ServiceRatePerServer();
  config.arrival_rate = rho * servers * config.service_rate;
  return analytic::AnalyzeMmc(config);
}

// The documented differential tolerances (see file comment).
void ExpectWithinTolerance(int servers, double rho,
                           const MeasuredMmc& measured,
                           const analytic::MmcMetrics& oracle,
                           double relative_band, double wait_floor_s) {
  const std::string where =
      "c=" + std::to_string(servers) + " rho=" + std::to_string(rho);
  EXPECT_NEAR(measured.utilization, oracle.utilization, 0.015) << where;
  EXPECT_NEAR(measured.wait_probability, oracle.wait_probability, 0.03)
      << where;
  EXPECT_NEAR(measured.mean_wait_s, oracle.mean_wait_s,
              relative_band * oracle.mean_wait_s + wait_floor_s)
      << where << " (wait: sim " << SecondsToMs(measured.mean_wait_s)
      << " ms vs oracle " << SecondsToMs(oracle.mean_wait_s) << " ms)";
  EXPECT_NEAR(measured.mean_sojourn_s, oracle.mean_sojourn_s,
              relative_band * oracle.mean_sojourn_s)
      << where;

  // Any tolerance breach above ships a triage bundle for CI to upload.
  testing::TriageOnGtestFailure(
      "sim_differential_test", "differential-mmc",
      "simulator drifted outside the M/M/c oracle tolerance at " + where,
      {{"servers", std::to_string(servers)},
       {"rho", std::to_string(rho)},
       {"relative_band", std::to_string(relative_band)}});
}

TEST(SimDifferential, MatchesMmcOracleAcrossTheGrid) {
  // >= 12 points (the acceptance gate sweeps 14): every fleet size the
  // paper's experiments use, from the single-GPU corner to a 10-GPU BASE
  // cluster, across light, sized (0.75 is the paper's sizing point) and
  // heavy load.
  const std::vector<int> server_grid = {1, 2, 4, 8};
  const std::vector<double> rho_grid = {0.35, 0.6, 0.8};
  std::uint64_t seed = 1000;
  for (int servers : server_grid) {
    for (double rho : rho_grid) {
      const MeasuredMmc measured =
          RunMmcSim(servers, rho, ++seed, kTargetCompletions);
      ExpectWithinTolerance(servers, rho, measured, OracleFor(servers, rho),
                            /*relative_band=*/0.10, /*wait_floor_s=*/25e-5);
    }
  }
  // Two high-load corners: rho = 0.9 waits are long and autocorrelated, so
  // the band widens (still tight enough to catch systematic bias).
  for (int servers : {1, 4}) {
    const MeasuredMmc measured =
        RunMmcSim(servers, 0.9, ++seed, 2.0 * kTargetCompletions);
    ExpectWithinTolerance(servers, 0.9, measured, OracleFor(servers, 0.9),
                          /*relative_band=*/0.15, /*wait_floor_s=*/25e-5);
  }
}

TEST(SimDifferential, RandomPointsPropertyHolds) {
  // Property form of the same gate: random (c, rho) points, shorter runs,
  // looser band. Shrinks toward fewer servers / milder load, so a genuine
  // bias reports the simplest configuration that exhibits it.
  testing::prop::Config config;
  config.name = "sim-matches-mmc-oracle";
  config.seed = 77;
  config.iterations = 6;
  const auto domain = testing::prop::MmcPointDomain(10, 0.3, 0.85);
  const auto outcome = testing::prop::Check<testing::prop::MmcPoint>(
      config, domain,
      [](const testing::prop::MmcPoint& point)
          -> std::optional<std::string> {
        const MeasuredMmc measured =
            RunMmcSim(point.servers, point.rho, 4242, 100000.0);
        const analytic::MmcMetrics oracle =
            OracleFor(point.servers, point.rho);
        const double band = 0.15 * oracle.mean_wait_s + 5e-4;
        if (std::abs(measured.mean_wait_s - oracle.mean_wait_s) > band) {
          std::ostringstream os;
          os << "mean wait " << SecondsToMs(measured.mean_wait_s)
             << " ms vs oracle " << SecondsToMs(oracle.mean_wait_s)
             << " ms (band " << SecondsToMs(band) << " ms)";
          return os.str();
        }
        if (std::abs(measured.utilization - oracle.utilization) > 0.02) {
          std::ostringstream os;
          os << "utilization " << measured.utilization << " vs oracle "
             << oracle.utilization;
          return os.str();
        }
        return std::nullopt;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report;
}

TEST(SimDifferential, ExponentialServiceIsDeterministic) {
  const MeasuredMmc a = RunMmcSim(4, 0.7, 9, 50000.0);
  const MeasuredMmc b = RunMmcSim(4, 0.7, 9, 50000.0);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.mean_wait_s, b.mean_wait_s);
  EXPECT_EQ(a.utilization, b.utilization);
}

}  // namespace
}  // namespace clover::sim
