// gtest-free part of the scenario runner (fixtures + execution), linkable
// by non-test binaries (bench/bench_runner). The gtest-dependent invariant
// checks live in scenario_checks.cc.
#include "testing/scenario.h"

#include "common/check.h"
#include "graph/mapping.h"

namespace clover::testing {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFlat: return "flat";
    case TraceKind::kCisoMarch: return "ciso-march";
    case TraceKind::kEsoMarch: return "eso-march";
    case TraceKind::kStep: return "step";
  }
  return "unknown";
}

carbon::CarbonTrace MakeScenarioTrace(const Scenario& scenario) {
  switch (scenario.trace) {
    case TraceKind::kFlat:
      return FlatTrace(250.0, scenario.duration_hours);
    case TraceKind::kCisoMarch:
      return ProfileTrace(carbon::TraceProfile::kCisoMarch,
                          scenario.duration_hours, scenario.seed);
    case TraceKind::kEsoMarch:
      return ProfileTrace(carbon::TraceProfile::kEsoMarch,
                          scenario.duration_hours, scenario.seed);
    case TraceKind::kStep:
      return StepTrace(120.0, 320.0, /*period_hours=*/1.5,
                       scenario.duration_hours);
  }
  CLOVER_CHECK_MSG(false, "unreachable trace kind");
}

core::ExperimentConfig MakeConfig(const Scenario& scenario,
                                  core::Scheme scheme,
                                  const carbon::CarbonTrace* trace) {
  core::ExperimentConfig config;
  config.app = scenario.app;
  config.scheme = scheme;
  config.trace = trace;
  config.duration_hours = scenario.duration_hours;
  config.num_gpus = scenario.num_gpus;
  config.sizing_gpus = scenario.sizing_gpus;
  config.lambda = scenario.lambda;
  config.accuracy_limit_pct = scenario.accuracy_limit_pct;
  config.burst = scenario.burst;
  config.control_interval_s = scenario.control_interval_s;
  config.seed = scenario.seed;
  return config;
}

ScenarioRun RunScenario(core::ExperimentHarness& harness,
                        const Scenario& scenario,
                        const carbon::CarbonTrace& trace) {
  ScenarioRun run;
  run.base = harness.Run(MakeConfig(scenario, core::Scheme::kBase, &trace));
  run.clover =
      harness.Run(MakeConfig(scenario, core::Scheme::kClover, &trace));
  return run;
}

serving::Deployment FinalCloverDeployment(const core::RunReport& report,
                                          const models::ModelZoo& zoo,
                                          int num_gpus) {
  graph::GraphMapper mapper(&zoo, num_gpus);
  for (auto it = report.optimizations.rbegin();
       it != report.optimizations.rend(); ++it) {
    auto deployment = mapper.ToDeployment(it->search.best);
    if (deployment.has_value()) return *deployment;
  }
  return serving::MakeBase(report.app, num_gpus);
}

}  // namespace clover::testing
