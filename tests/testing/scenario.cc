// gtest-free part of the scenario runner (fixtures + execution), linkable
// by non-test binaries (bench/bench_runner). The gtest-dependent invariant
// checks live in scenario_checks.cc.
#include "testing/scenario.h"

#include "common/check.h"
#include "common/units.h"
#include "graph/mapping.h"

namespace clover::testing {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFlat: return "flat";
    case TraceKind::kCisoMarch: return "ciso-march";
    case TraceKind::kEsoMarch: return "eso-march";
    case TraceKind::kStep: return "step";
  }
  return "unknown";
}

carbon::CarbonTrace MakeScenarioTrace(const Scenario& scenario) {
  switch (scenario.trace) {
    case TraceKind::kFlat:
      return FlatTrace(250.0, scenario.duration_hours);
    case TraceKind::kCisoMarch:
      return ProfileTrace(carbon::TraceProfile::kCisoMarch,
                          scenario.duration_hours, scenario.seed);
    case TraceKind::kEsoMarch:
      return ProfileTrace(carbon::TraceProfile::kEsoMarch,
                          scenario.duration_hours, scenario.seed);
    case TraceKind::kStep:
      return StepTrace(120.0, 320.0, /*period_hours=*/1.5,
                       scenario.duration_hours);
  }
  CLOVER_CHECK_MSG(false, "unreachable trace kind");
}

core::ExperimentConfig MakeConfig(const Scenario& scenario,
                                  core::Scheme scheme,
                                  const carbon::CarbonTrace* trace) {
  core::ExperimentConfig config;
  config.app = scenario.app;
  config.scheme = scheme;
  config.trace = trace;
  config.duration_hours = scenario.duration_hours;
  config.num_gpus = scenario.num_gpus;
  config.sizing_gpus = scenario.sizing_gpus;
  config.lambda = scenario.lambda;
  config.accuracy_limit_pct = scenario.accuracy_limit_pct;
  config.burst = scenario.burst;
  config.faults = scenario.faults;
  config.control_interval_s = scenario.control_interval_s;
  config.seed = scenario.seed;
  return config;
}

ScenarioRun RunScenario(core::ExperimentHarness& harness,
                        const Scenario& scenario,
                        const carbon::CarbonTrace& trace) {
  ScenarioRun run;
  run.base = harness.Run(MakeConfig(scenario, core::Scheme::kBase, &trace));
  run.clover =
      harness.Run(MakeConfig(scenario, core::Scheme::kClover, &trace));
  return run;
}

FleetScenario AntiCorrelatedFleetScenario() {
  FleetScenario scenario;
  scenario.name = "fleet_anti_correlated";
  // The named presets us-west and ap-northeast are the same grid profile
  // 12 h apart — the same pair bench_runner's fleet_routing uses.
  scenario.config.regions =
      fleet::RegionsFromPresets({"us-west", "ap-northeast"},
                                /*gpus_per_region=*/3);
  scenario.config.duration_hours = 24.0;
  scenario.config.scheme = core::Scheme::kBase;
  scenario.config.seed = 11;
  scenario.min_greedy_save_pct = 1.0;
  return scenario;
}

FleetScenario CorrelatedFleetScenario() {
  FleetScenario scenario;
  scenario.name = "fleet_correlated";
  scenario.config.regions =
      fleet::RegionsFromPresets({"us-west", "us-west"},
                                /*gpus_per_region=*/3);
  // Same profile, same phase; distinct names give the twin independent
  // weather (the trace stream is seeded per region name).
  scenario.config.regions[1].preset.name = "us-west-twin";
  scenario.config.duration_hours = 24.0;
  scenario.config.scheme = core::Scheme::kBase;
  scenario.config.seed = 11;
  // Nothing to arbitrage beyond weather noise: greedy must at least not
  // emit more than static.
  scenario.min_greedy_save_pct = -0.25;
  return scenario;
}

FleetScenario OutageFleetScenario() {
  FleetScenario scenario;
  scenario.name = "fleet_outage";
  scenario.config.regions = fleet::RegionsFromPresets(
      {"us-west", "eu-west", "ap-northeast"}, /*gpus_per_region=*/3);
  // eu-west drops out of rotation for 90 minutes mid-run; the two
  // survivors must absorb its share within their capacity margins.
  scenario.config.regions[1].outage_start_s = HoursToSeconds(2.0);
  scenario.config.regions[1].outage_end_s = HoursToSeconds(3.5);
  scenario.config.duration_hours = 8.0;
  scenario.config.scheme = core::Scheme::kBase;
  // Failover headroom: each survivor must be able to carry half the fleet.
  scenario.config.utilization_target = 0.45;
  // Three-region geo spread: the fleet SLO must leave room for the
  // farthest region's RTT on top of the cluster tail (BASE regions do not
  // downshift to faster variants the way CLOVER regions do).
  scenario.config.slo_budget_factor = 1.5;
  scenario.config.seed = 11;
  scenario.min_greedy_save_pct = -0.25;  // outage dominates; no save floor
  return scenario;
}

FleetScenarioRun RunFleetScenario(const FleetScenario& scenario) {
  FleetScenarioRun run;
  fleet::FleetConfig config = scenario.config;
  config.router = fleet::RouterPolicy::kCarbonGreedy;
  run.greedy = fleet::RunFleet(config, models::DefaultZoo());
  config.router = fleet::RouterPolicy::kStatic;
  run.static_split = fleet::RunFleet(config, models::DefaultZoo());
  return run;
}

serving::Deployment FinalCloverDeployment(const core::RunReport& report,
                                          const models::ModelZoo& zoo,
                                          int num_gpus) {
  graph::GraphMapper mapper(&zoo, num_gpus);
  for (auto it = report.optimizations.rbegin();
       it != report.optimizations.rend(); ++it) {
    auto deployment = mapper.ToDeployment(it->search.best);
    if (deployment.has_value()) return *deployment;
  }
  return serving::MakeBase(report.app, num_gpus);
}

}  // namespace clover::testing
