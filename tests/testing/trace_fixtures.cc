#include "testing/trace_fixtures.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"

namespace clover::testing {

carbon::CarbonTrace FlatTrace(double g_per_kwh, double duration_hours,
                              double sample_interval_s) {
  return carbon::FlatTrace(g_per_kwh, duration_hours, sample_interval_s);
}

carbon::CarbonTrace ProfileTrace(carbon::TraceProfile profile,
                                 double duration_hours, std::uint64_t seed) {
  carbon::TraceGeneratorOptions options;
  options.duration_hours = duration_hours;
  options.seed = seed;
  return GenerateTrace(profile, options);
}

carbon::CarbonTrace StepTrace(double low, double high, double period_hours,
                              double duration_hours,
                              double sample_interval_s) {
  return carbon::StepTrace(low, high, period_hours, duration_hours,
                           sample_interval_s);
}

}  // namespace clover::testing
