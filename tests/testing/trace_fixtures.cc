#include "testing/trace_fixtures.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"

namespace clover::testing {

carbon::CarbonTrace FlatTrace(double g_per_kwh, double duration_hours,
                              double sample_interval_s) {
  CLOVER_CHECK(g_per_kwh > 0.0);
  CLOVER_CHECK(duration_hours > 0.0);
  const auto samples = static_cast<std::size_t>(
      std::ceil(duration_hours * 3600.0 / sample_interval_s)) + 1;
  return carbon::CarbonTrace("flat-" + std::to_string(g_per_kwh),
                             sample_interval_s,
                             std::vector<double>(samples, g_per_kwh));
}

carbon::CarbonTrace ProfileTrace(carbon::TraceProfile profile,
                                 double duration_hours, std::uint64_t seed) {
  carbon::TraceGeneratorOptions options;
  options.duration_hours = duration_hours;
  options.seed = seed;
  return GenerateTrace(profile, options);
}

carbon::CarbonTrace StepTrace(double low, double high, double period_hours,
                              double duration_hours,
                              double sample_interval_s) {
  CLOVER_CHECK(low > 0.0 && high > low);
  CLOVER_CHECK(period_hours > 0.0 && duration_hours > 0.0);
  const double period_s = period_hours * 3600.0;
  const auto samples = static_cast<std::size_t>(
      std::ceil(duration_hours * 3600.0 / sample_interval_s)) + 1;
  std::vector<double> values(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) * sample_interval_s;
    const bool high_phase =
        static_cast<std::uint64_t>(std::floor(t / period_s)) % 2 == 1;
    values[i] = high_phase ? high : low;
  }
  return carbon::CarbonTrace("step-" + std::to_string(low) + "-" +
                                 std::to_string(high),
                             sample_interval_s, std::move(values));
}

}  // namespace clover::testing
