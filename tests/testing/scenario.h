// Scenario-matrix runner: one declarative description per end-to-end
// configuration (trace shape x arrival process x fleet size x objective),
// executed through the full pipeline — carbon trace -> controller/optimizer
// -> cluster simulator — for both BASE and CLOVER, with shared invariant
// checks. scenario_matrix_test.cc instantiates the matrix.
//
// Split across two TUs: scenario.cc holds the gtest-free fixtures and
// execution (library clover::scenarios, also linked by bench/bench_runner
// so perf scenarios and test scenarios are the same code);
// scenario_checks.cc holds CheckScenarioInvariants, which needs gtest
// (library clover::testing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "carbon/trace.h"
#include "core/harness.h"
#include "fleet/fleet_sim.h"
#include "serving/deployment.h"
#include "testing/trace_fixtures.h"

namespace clover::testing {

enum class TraceKind {
  kFlat,       // constant 250 gCO2/kWh
  kCisoMarch,  // solar duck curve (diurnal)
  kEsoMarch,   // wind-dominated stochastic swings
  kStep,       // deterministic square wave 120 <-> 320
};

const char* TraceKindName(TraceKind kind);

// Per-scenario invariant envelopes (defaults fit a steady 4-GPU run).
struct ScenarioLimits {
  double min_carbon_save_pct = 0.0;     // CLOVER vs BASE, same stream
  double max_accuracy_loss_pct = 10.0;  // CLOVER vs BASE
  // Steady scenarios: CLOVER p95 must stay within slack of the calibrated
  // SLA. Bursty scenarios overload both schemes past the steady SLA, so
  // the SLO check there is relative to BASE on the identical stream.
  double p95_slo_slack = 1.25;
  double p95_vs_base_limit = 2.0;
  double min_completion_ratio = 0.98;  // completions / arrivals at run end
  // Reduced-fleet scenarios size the arrival rate for a larger cluster than
  // is deployed (Fig. 15): BASE is expected to overload, so its completion
  // ratio is exempt and CLOVER's SLO is judged on steady-state windows
  // (median per-window p95 over the second half of the run) instead of the
  // cold-start-inclusive overall p95.
  bool base_overloaded = false;
};

struct Scenario {
  std::string name;
  models::Application app = models::Application::kClassification;
  TraceKind trace = TraceKind::kCisoMarch;
  double duration_hours = 6.0;
  int num_gpus = 4;
  int sizing_gpus = 4;  // != num_gpus in reduced-fleet scenarios
  double lambda = 0.5;
  std::optional<double> accuracy_limit_pct;  // threshold-mode objective
  sim::BurstOptions burst;                   // default: steady Poisson
  // Fault schedule replayed against both schemes (sim/fault_injector.h);
  // empty = fault-free. Used by tests/fault_matrix_test.cc.
  sim::FaultSchedule faults;
  double control_interval_s = 300.0;         // also the metrics window
  std::uint64_t seed = 11;
  ScenarioLimits limits;
};

carbon::CarbonTrace MakeScenarioTrace(const Scenario& scenario);

core::ExperimentConfig MakeConfig(const Scenario& scenario,
                                  core::Scheme scheme,
                                  const carbon::CarbonTrace* trace);

struct ScenarioRun {
  core::RunReport base;
  core::RunReport clover;
};

// Runs BASE and CLOVER over the scenario's trace on one harness (shared
// calibration cache, identical arrival stream).
ScenarioRun RunScenario(core::ExperimentHarness& harness,
                        const Scenario& scenario,
                        const carbon::CarbonTrace& trace);

// Asserts the cross-scenario invariants (gtest EXPECT failures attribute to
// the calling test): both schemes serve, carbon savings and accuracy loss
// inside the scenario's envelope, SLO attainment, aligned window series.
void CheckScenarioInvariants(const Scenario& scenario, const ScenarioRun& run);

// Deployment realized from the last optimization invocation's winning
// graph; falls back to BASE when the run had no (feasible) optimization.
// Bridges the simulator-side reports into the threaded serving runtime.
serving::Deployment FinalCloverDeployment(const core::RunReport& report,
                                          const models::ModelZoo& zoo,
                                          int num_gpus);

// --- Fleet scenarios (multi-region routing) -------------------------------
//
// A fleet scenario fixes the regions/load and is executed twice — once
// under the carbon-greedy router and once under the static split — so the
// invariants can compare the spatial policy against the operator baseline.
// The regional scheme is BASE: routing effects are isolated from the
// optimizer's temporal adaptation (bench_runner's fleet_routing scenario
// and tests/fleet_test.cc cover the combined CLOVER-per-region pipeline).
struct FleetScenario {
  std::string name;
  fleet::FleetConfig config;  // router field is overridden per run
  // Carbon-greedy must save at least this much gCO2 vs static (negative
  // values encode "may not lose more than" for correlated fixtures).
  double min_greedy_save_pct = 0.0;
  double min_slo_attainment = 0.90;  // both policies
};

// Two regions sharing the CISO March profile 12 h out of phase: the
// anti-correlated setting where spatial arbitrage must pay off.
FleetScenario AntiCorrelatedFleetScenario();
// Two regions on the same profile at the same phase (independent weather
// only): carbon-greedy has almost nothing to arbitrage and must not lose.
FleetScenario CorrelatedFleetScenario();
// Three regions with a scheduled mid-run outage of one: the router must
// route around it and the fleet SLO must hold.
FleetScenario OutageFleetScenario();

struct FleetScenarioRun {
  fleet::FleetReport greedy;
  fleet::FleetReport static_split;
};

FleetScenarioRun RunFleetScenario(const FleetScenario& scenario);

// Shared fleet invariants (gtest): both policies serve, routed load is
// conserved at every rebalance, the greedy-vs-static carbon envelope and
// the SLO attainment floor hold.
void CheckFleetScenarioInvariants(const FleetScenario& scenario,
                                  const FleetScenarioRun& run);

}  // namespace clover::testing
