#include "testing/proptest.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace clover::testing::prop {
namespace {

std::optional<std::uint64_t> EnvU64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 0);
  if (end == value || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

Gen::Gen(std::uint64_t stream_seed)
    : seed_(stream_seed), rng_(seed_, "proptest") {}

double Gen::Uniform(double lo, double hi) {
  CLOVER_CHECK(hi >= lo);
  return lo + (hi - lo) * rng_.NextDouble();
}

std::int64_t Gen::IntInRange(std::int64_t lo, std::int64_t hi) {
  CLOVER_CHECK(hi >= lo);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(rng_.NextBounded(span));
}

std::size_t Gen::Index(std::size_t size) {
  CLOVER_CHECK(size > 0);
  return static_cast<std::size_t>(rng_.NextBounded(size));
}

bool Gen::Chance(double probability) {
  return rng_.NextDouble() < probability;
}

double Gen::Exponential(double mean) {
  CLOVER_CHECK(mean > 0.0);
  return rng_.NextExponential(1.0 / mean);
}

namespace internal {

// Mixes (base seed, iteration) into one stream seed with SplitMix64 — the
// same derivation discipline the simulator's named streams use, so
// iteration i is reproducible in isolation from its reported seed.
std::uint64_t IterationSeed(std::uint64_t base_seed,
                            std::uint64_t iteration) {
  std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (iteration + 1));
  return SplitMix64(state);
}

ResolvedConfig Resolve(const Config& config) {
  CLOVER_CHECK_MSG(config.iterations > 0, "proptest needs >= 1 iteration");
  ResolvedConfig resolved;
  resolved.base_seed = config.seed;
  resolved.iterations = config.iterations;
  if (const auto pinned = EnvU64("CLOVER_PROPTEST_SEED")) {
    // Replaying one failing seed: a single iteration on exactly that
    // stream.
    resolved.pinned_seed = *pinned;
    resolved.iterations = 1;
  }
  if (const auto iters = EnvU64("CLOVER_PROPTEST_ITERS");
      iters && !resolved.pinned_seed) {
    // A zero/overflowing override would make every property a silent
    // no-op pass; fail loudly instead.
    CLOVER_CHECK_MSG(*iters >= 1 && *iters <= 1000000,
                     "CLOVER_PROPTEST_ITERS out of range: " << *iters);
    resolved.iterations = static_cast<int>(*iters);
  }
  return resolved;
}

std::string FormatFailure(const Config& config, std::uint64_t failing_seed,
                          int iteration, int shrink_steps,
                          const std::string& witness,
                          const std::string& message) {
  std::ostringstream os;
  os << "property '" << config.name << "' FALSIFIED\n"
     << "  iteration " << iteration << " of " << config.iterations
     << ", seed " << failing_seed << "\n"
     << "  rerun just this case: CLOVER_PROPTEST_SEED=" << failing_seed
     << " <test binary>\n"
     << "  witness (after " << shrink_steps << " shrink steps): " << witness
     << "\n"
     << "  failure: " << message;
  return os.str();
}

}  // namespace internal

Domain<std::vector<double>> TraceValuesDomain(std::size_t max_len, double lo,
                                              double hi) {
  CLOVER_CHECK(max_len >= 2 && hi >= lo && lo >= 0.0);
  Domain<std::vector<double>> domain;
  domain.generate = [max_len, lo, hi](Gen& gen) {
    const std::size_t len =
        static_cast<std::size_t>(gen.IntInRange(2, static_cast<std::int64_t>(
                                                       max_len)));
    std::vector<double> values(len);
    for (double& v : values) v = gen.Uniform(lo, hi);
    return values;
  };
  domain.shrink = [lo, hi](const std::vector<double>& witness) {
    std::vector<std::vector<double>> candidates;
    if (witness.size() > 2) {
      // First half, second half (keeping >= 2 samples).
      const std::size_t half = witness.size() / 2;
      candidates.emplace_back(witness.begin(),
                              witness.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      std::max<std::size_t>(half, 2)));
      candidates.emplace_back(witness.end() -
                                  static_cast<std::ptrdiff_t>(
                                      std::max<std::size_t>(
                                          witness.size() - half, 2)),
                              witness.end());
    }
    // Flatten toward the range midpoint (simpler weather).
    const double mid = 0.5 * (lo + hi);
    std::vector<double> flattened = witness;
    bool changed = false;
    for (double& v : flattened) {
      const double next = 0.5 * (v + mid);
      if (std::abs(next - mid) < std::abs(v - mid) * 0.999) changed = true;
      v = next;
    }
    if (changed) candidates.push_back(std::move(flattened));
    return candidates;
  };
  domain.describe = [](const std::vector<double>& values) {
    std::ostringstream os;
    os << "[" << values.size() << " samples:";
    const std::size_t shown = std::min<std::size_t>(values.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) os << " " << values[i];
    if (shown < values.size()) os << " ...";
    os << "]";
    return os.str();
  };
  return domain;
}

Domain<MmcPoint> MmcPointDomain(int max_servers, double rho_lo,
                                double rho_hi) {
  CLOVER_CHECK(max_servers >= 1 && rho_lo > 0.0 && rho_hi < 1.0 &&
               rho_hi >= rho_lo);
  Domain<MmcPoint> domain;
  domain.generate = [max_servers, rho_lo, rho_hi](Gen& gen) {
    MmcPoint point;
    point.servers = static_cast<int>(gen.IntInRange(1, max_servers));
    point.rho = gen.Uniform(rho_lo, rho_hi);
    return point;
  };
  domain.shrink = [rho_lo](const MmcPoint& witness) {
    std::vector<MmcPoint> candidates;
    if (witness.servers > 1)
      candidates.push_back({witness.servers / 2, witness.rho});
    const double milder = 0.5 * (witness.rho + rho_lo);
    if (milder < witness.rho * 0.999)
      candidates.push_back({witness.servers, milder});
    return candidates;
  };
  domain.describe = [](const MmcPoint& point) {
    std::ostringstream os;
    os << "{c=" << point.servers << ", rho=" << point.rho << "}";
    return os.str();
  };
  return domain;
}

}  // namespace clover::testing::prop
