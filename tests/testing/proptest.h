// Seeded property-based testing, sized for this repo.
//
// A property is checked against `iterations` generated inputs. Every
// iteration derives its own RNG stream from (base seed, iteration), so
//   * the whole run is reproducible from one number,
//   * a failure report names the exact seed that falsified the property, and
//   * re-running just that seed is one environment variable away:
//       CLOVER_PROPTEST_SEED=<seed> ctest -R <test>   (iterations collapse
//       to the named seed; CLOVER_PROPTEST_ITERS=<n> overrides the count).
//
// When a property fails, the framework shrinks the witness with a fixed
// iteration budget: the Domain's `shrink` hook proposes strictly simpler
// candidates, the first candidate that still fails becomes the new witness,
// and the loop stops when no candidate fails or the budget runs out. The
// final report carries the shrunk witness (via `describe`), the failing
// seed and the property's own failure message.
//
// The framework is gtest-free (it lives in the clover::scenarios library so
// non-test binaries could reuse it); tests assert on Outcome::passed:
//
//   prop::Outcome outcome = prop::Check<T>(config, domain, property);
//   EXPECT_TRUE(outcome.passed) << outcome.report;
//
// Determinism contract: Check is a pure function of (config, domain,
// property, environment overrides). Domains must derive all randomness from
// the Gen handed to them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace clover::testing::prop {

// Per-iteration randomness source: a thin veneer over RngStream with the
// draw helpers generators actually want.
class Gen {
 public:
  // `stream_seed` IS the reproduction handle: constructing another Gen from
  // the same value replays the identical stream (this is what makes
  // CLOVER_PROPTEST_SEED work). Check() derives per-iteration stream seeds
  // from (base seed, iteration) via internal::IterationSeed.
  explicit Gen(std::uint64_t stream_seed);

  // The seed that reproduces this iteration's stream.
  std::uint64_t seed() const { return seed_; }

  double Uniform(double lo, double hi);
  // Inclusive integer range.
  std::int64_t IntInRange(std::int64_t lo, std::int64_t hi);
  std::size_t Index(std::size_t size);  // [0, size)
  bool Chance(double probability);
  double Exponential(double mean);

  RngStream& rng() { return rng_; }

 private:
  std::uint64_t seed_;
  RngStream rng_;
};

struct Config {
  std::string name;           // shown in reports
  std::uint64_t seed = 1;     // base seed (iteration streams derive from it)
  int iterations = 100;
  int max_shrink_steps = 200;  // fixed shrink budget
};

struct Outcome {
  bool passed = true;
  std::string report;             // human-readable; empty when passed
  std::uint64_t failing_seed = 0;  // reproduces the (unshrunk) failure
  int failing_iteration = -1;
  int shrink_steps = 0;  // shrink candidates accepted
};

// How to generate, simplify and print values of T.
template <typename T>
struct Domain {
  std::function<T(Gen&)> generate;
  // Strictly-simpler candidates for a failing witness; empty = no shrinking.
  std::function<std::vector<T>(const T&)> shrink;
  std::function<std::string(const T&)> describe;
};

// A property returns nullopt on success, a failure message otherwise.
template <typename T>
using Property = std::function<std::optional<std::string>(const T&)>;

namespace internal {

// Environment overrides (CLOVER_PROPTEST_SEED / CLOVER_PROPTEST_ITERS);
// `pinned_seed` set means "run exactly this one seed".
struct ResolvedConfig {
  std::uint64_t base_seed = 1;
  int iterations = 100;
  std::optional<std::uint64_t> pinned_seed;
};
ResolvedConfig Resolve(const Config& config);

// SplitMix64 over (base seed, iteration): the stream seed of iteration i.
std::uint64_t IterationSeed(std::uint64_t base_seed, std::uint64_t iteration);

std::string FormatFailure(const Config& config, std::uint64_t failing_seed,
                          int iteration, int shrink_steps,
                          const std::string& witness,
                          const std::string& message);

}  // namespace internal

template <typename T>
Outcome Check(const Config& config, const Domain<T>& domain,
              const Property<T>& property) {
  const internal::ResolvedConfig resolved = internal::Resolve(config);
  Outcome outcome;
  for (int i = 0; i < resolved.iterations; ++i) {
    // A pinned seed replays one stream directly; otherwise streams derive
    // from (base seed, iteration).
    Gen gen(resolved.pinned_seed
                ? *resolved.pinned_seed
                : internal::IterationSeed(resolved.base_seed,
                                          static_cast<std::uint64_t>(i)));
    T witness = domain.generate(gen);
    std::optional<std::string> failure = property(witness);
    if (!failure) continue;

    outcome.passed = false;
    outcome.failing_seed = gen.seed();
    outcome.failing_iteration = i;

    // Fixed-budget greedy shrink: accept the first simpler candidate that
    // still fails, restart from it.
    if (domain.shrink) {
      int budget = config.max_shrink_steps;
      bool shrunk_this_round = true;
      while (budget > 0 && shrunk_this_round) {
        shrunk_this_round = false;
        for (T& candidate : domain.shrink(witness)) {
          if (budget-- <= 0) break;
          std::optional<std::string> candidate_failure = property(candidate);
          if (candidate_failure) {
            witness = std::move(candidate);
            failure = std::move(candidate_failure);
            ++outcome.shrink_steps;
            shrunk_this_round = true;
            break;
          }
        }
      }
    }

    const std::string witness_text =
        domain.describe ? domain.describe(witness) : std::string("<opaque>");
    outcome.report = internal::FormatFailure(
        config, outcome.failing_seed, i, outcome.shrink_steps, witness_text,
        *failure);
    return outcome;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Ready-made domains for this repo's common inputs.
// ---------------------------------------------------------------------------

// Carbon-intensity sample vectors in [lo, hi] gCO2/kWh, length 2..max_len.
// Shrinks by halving the vector and flattening values toward the midpoint.
Domain<std::vector<double>> TraceValuesDomain(std::size_t max_len, double lo,
                                              double hi);

// An M/M/c grid point for differential checks.
struct MmcPoint {
  int servers = 1;
  double rho = 0.5;
};
// servers in [1, max_servers], rho in [rho_lo, rho_hi]. Shrinks toward
// fewer servers and milder load.
Domain<MmcPoint> MmcPointDomain(int max_servers, double rho_lo,
                                double rho_hi);

}  // namespace clover::testing::prop
