// Triage-on-failure hook for gtest suites: call at the end of a check that
// guards a documented tolerance or invariant, and if any EXPECT in the
// current test has already failed, a self-contained triage bundle
// (obs/triage.h — config, metrics, trace tail, exact repro command) is
// written for CI's `if: failure()` artifact upload. No-op on green tests,
// so sprinkling it costs nothing.
//
// Header-only and gtest-dependent by design: it lives with the other
// gtest-side scenario checks, not in clover::obs (which stays usable from
// non-test binaries).
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/triage.h"

namespace clover::testing {

// Writes a triage bundle iff the current gtest has a recorded failure.
// `binary` is the test executable's name under build/tests/ (the caller
// knows it; gtest does not expose argv[0] portably) — the repro command
// re-runs exactly the failing test via --gtest_filter. Returns the bundle
// directory, or "" when the test is green or the write failed.
inline std::string TriageOnGtestFailure(
    const std::string& binary, const std::string& name,
    const std::string& reason,
    std::vector<std::pair<std::string, std::string>> config = {}) {
  if (!::testing::Test::HasFailure()) return "";
  obs::TriageContext context;
  context.name = name;
  context.reason = reason;
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string filter =
      info != nullptr
          ? std::string(info->test_suite_name()) + "." + info->name()
          : "*";
  context.repro_command =
      "./build/tests/" + binary + " --gtest_filter='" + filter + "'";
  context.config = std::move(config);
  context.config.emplace_back("gtest", filter);
  return obs::WriteTriageBundle(context);
}

}  // namespace clover::testing
