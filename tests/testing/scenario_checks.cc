// gtest-dependent half of the scenario runner: the shared invariant checks
// (scenario.cc keeps the gtest-free fixtures/execution so non-test
// binaries can link them).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testing/golden.h"
#include "testing/scenario.h"
#include "testing/triage_gtest.h"

namespace clover::testing {
namespace {

// Median of the per-window p95 over the second half of the run: the
// operating regime once CLOVER has escaped the cold-start transient
// (mirrors the Fig. 15 reporting rule in bench/fig15_reduced_gpus.cc).
double SteadyStateP95Ms(const core::RunReport& report) {
  std::vector<double> tail;
  for (std::size_t w = report.windows.size() / 2; w < report.windows.size();
       ++w)
    tail.push_back(report.windows[w].p95_ms);
  std::sort(tail.begin(), tail.end());
  return tail.empty() ? 0.0 : tail[tail.size() / 2];
}

}  // namespace

void CheckScenarioInvariants(const Scenario& scenario,
                             const ScenarioRun& run) {
  SCOPED_TRACE("scenario: " + scenario.name);
  const ScenarioLimits& limits = scenario.limits;

  // Both schemes serve the stream; CLOVER to (near) completion, BASE too
  // unless the scenario deliberately overloads it.
  for (const core::RunReport* report : {&run.base, &run.clover}) {
    EXPECT_GT(report->completions, 0u);
    EXPECT_LE(report->completions, report->arrivals);
    if (report == &run.clover || !limits.base_overloaded) {
      EXPECT_GE(static_cast<double>(report->completions),
                limits.min_completion_ratio *
                    static_cast<double>(report->arrivals));
    }
    EXPECT_GT(report->total_energy_j, 0.0);
    EXPECT_GT(report->total_carbon_g, 0.0);
    // Per-window series aligned with the objective series, one window per
    // control interval.
    EXPECT_EQ(report->objective_series.size(), report->windows.size());
    EXPECT_EQ(report->windows.size(),
              static_cast<std::size_t>(scenario.duration_hours * 3600.0 /
                                       scenario.control_interval_s));
  }

  // CLOVER never emits more carbon than BASE on the same stream.
  EXPECT_TRUE(InGoldenRange("carbon_save_pct",
                            run.clover.CarbonSavePctVs(run.base),
                            {limits.min_carbon_save_pct, 100.0}));

  // Accuracy: bounded loss, and inside the family's published range.
  EXPECT_TRUE(InGoldenRange("accuracy_loss_pct",
                            run.clover.AccuracyLossPctVs(run.base),
                            {-1.0, limits.max_accuracy_loss_pct}));
  const models::ModelFamily& family =
      models::DefaultZoo().ForApplication(scenario.app);
  EXPECT_GE(run.clover.weighted_accuracy, family.Smallest().accuracy);
  EXPECT_LE(run.clover.weighted_accuracy, family.Largest().accuracy);

  // SLO attainment. The SLA is calibrated on steady BASE traffic, so
  // steady scenarios check against it directly; bursty scenarios compare
  // against BASE on the identical modulated stream; reduced-fleet
  // scenarios check CLOVER's steady-state regime (BASE diverges).
  if (limits.base_overloaded) {
    EXPECT_LE(SteadyStateP95Ms(run.clover),
              limits.p95_slo_slack * run.clover.params.l_tail_ms);
  } else if (scenario.burst.enabled()) {
    EXPECT_LE(run.clover.P95NormVs(run.base), limits.p95_vs_base_limit);
  } else {
    EXPECT_LE(run.clover.overall_p95_ms,
              limits.p95_slo_slack * run.clover.params.l_tail_ms);
  }

  // Threshold-mode objective: the optimizer must respect the accuracy
  // floor (small tolerance for mid-window reconfiguration mixing).
  if (scenario.accuracy_limit_pct.has_value()) {
    EXPECT_LE(run.clover.AccuracyLossPctVs(run.base),
              *scenario.accuracy_limit_pct + 0.5);
  }

  TriageOnGtestFailure(
      "scenario_matrix_test", "scenario-" + scenario.name,
      "scenario invariant breach: " + scenario.name,
      {{"scenario", scenario.name},
       {"app", std::string(models::ApplicationName(scenario.app))},
       {"seed", std::to_string(scenario.seed)}});
}

void CheckFleetScenarioInvariants(const FleetScenario& scenario,
                                  const FleetScenarioRun& run) {
  SCOPED_TRACE("fleet scenario: " + scenario.name);

  for (const fleet::FleetReport* report :
       {&run.greedy, &run.static_split}) {
    SCOPED_TRACE("router: " + report->router_name);
    // Every region served and the fleet stream ran to (near) completion.
    EXPECT_GT(report->fleet.completions, 0u);
    EXPECT_GE(static_cast<double>(report->fleet.completions),
              0.98 * static_cast<double>(report->fleet.arrivals));
    EXPECT_EQ(report->regions.size(), scenario.config.regions.size());

    // Conservation of routed load at every rebalance: weights are
    // non-negative and sum to 1, and offline regions carry nothing.
    for (std::size_t r = 0; r < report->weight_history.size(); ++r) {
      const std::vector<double>& weights = report->weight_history[r];
      ASSERT_EQ(weights.size(), report->regions.size());
      double sum = 0.0;
      for (double w : weights) {
        EXPECT_GE(w, 0.0);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }

    // SLO: the fleet-wide p95 (network penalty included) within budget and
    // the per-window attainment above the scenario floor.
    EXPECT_LE(report->fleet.overall_p95_ms, report->slo_budget_ms);
    EXPECT_GE(report->slo_attainment, scenario.min_slo_attainment);
  }

  // The spatial policy's carbon envelope vs the operator baseline.
  EXPECT_GE(run.greedy.fleet.CarbonSavePctVs(run.static_split.fleet),
            scenario.min_greedy_save_pct);

  TriageOnGtestFailure(
      "scenario_matrix_test", "fleet-scenario-" + scenario.name,
      "fleet scenario invariant breach: " + scenario.name,
      {{"scenario", scenario.name},
       {"seed", std::to_string(scenario.config.seed)}});
}

}  // namespace clover::testing
