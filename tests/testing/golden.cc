#include "testing/golden.h"

#include <cmath>

namespace clover::testing {

::testing::AssertionResult InGoldenRange(const char* metric, double value,
                                         GoldenRange range) {
  if (value >= range.lo && value <= range.hi)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << metric << " = " << value << " outside golden envelope ["
         << range.lo << ", " << range.hi << "]";
}

::testing::AssertionResult NearWithTolerance(const char* what, double actual,
                                             double expected, double rel_tol,
                                             double abs_tol) {
  const double diff = std::abs(actual - expected);
  const double bound = std::max(abs_tol, rel_tol * std::abs(expected));
  if (diff <= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << what << ": |" << actual << " - " << expected << "| = " << diff
         << " exceeds tolerance " << bound << " (rel " << rel_tol << ", abs "
         << abs_tol << ")";
}

}  // namespace clover::testing
