// Carbon-intensity trace fixtures for the scenario matrix.
//
// The synthetic profiles in carbon/trace_generator.h reproduce the paper's
// grids; the fixtures here expose the degenerate shapes tests need on top:
// a flat trace (isolates energy-driven savings from intensity-chasing) and
// a square-wave step trace (deterministic sharp swings that exercise the
// controller's CI trigger without OU-process noise). Both forward to the
// shared builders in carbon/trace_generator.h — the campaign engine's
// "flat"/"step" presets use the same construction, so the two can never
// drift.
#pragma once

#include <cstdint>

#include "carbon/trace.h"
#include "carbon/trace_generator.h"

namespace clover::testing {

// Constant intensity: any carbon saving must come from serving the same
// load with less energy, not from shifting work to cleaner hours.
carbon::CarbonTrace FlatTrace(double g_per_kwh, double duration_hours,
                              double sample_interval_s = 300.0);

// Synthetic grid profile at scenario scale (deterministic per seed).
carbon::CarbonTrace ProfileTrace(carbon::TraceProfile profile,
                                 double duration_hours, std::uint64_t seed);

// Square wave alternating `low` and `high` gCO2/kWh every `period_hours`,
// starting low. Each edge is a guaranteed reoptimization trigger.
carbon::CarbonTrace StepTrace(double low, double high, double period_hours,
                              double duration_hours,
                              double sample_interval_s = 300.0);

}  // namespace clover::testing
