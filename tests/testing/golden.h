// Golden-value helpers and tolerance comparators for the scenario matrix.
//
// Scenario metrics are stochastic-simulation outputs: exact per-seed, but
// sensitive to any intentional model recalibration. Golden assertions are
// therefore envelopes ([lo, hi] ranges) and relative tolerances rather than
// exact equality, so the matrix pins the paper's qualitative shape without
// ossifying incidental decimals.
#pragma once

#include <gtest/gtest.h>

namespace clover::testing {

// Inclusive envelope a golden metric must land in.
struct GoldenRange {
  double lo = 0.0;
  double hi = 0.0;
};

// EXPECT_TRUE(InGoldenRange("carbon_save_pct", value, {40.0, 90.0}))
// fails with the metric name, the value and the envelope.
::testing::AssertionResult InGoldenRange(const char* metric, double value,
                                         GoldenRange range);

// Relative/absolute tolerance comparison: passes when
// |actual - expected| <= max(abs_tol, rel_tol * |expected|).
::testing::AssertionResult NearWithTolerance(const char* what, double actual,
                                             double expected, double rel_tol,
                                             double abs_tol = 0.0);

}  // namespace clover::testing
