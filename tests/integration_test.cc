// End-to-end integration tests: short harness runs reproducing the paper's
// qualitative results at reduced duration (the full 48 h runs live in
// bench/). These are the repo's regression net for the headline claims.
#include <gtest/gtest.h>

#include "carbon/trace_generator.h"
#include "core/harness.h"

namespace clover::core {
namespace {

using models::Application;
using models::DefaultZoo;

class IntegrationFixture : public ::testing::Test {
 protected:
  static carbon::CarbonTrace MakeTrace() {
    carbon::TraceGeneratorOptions options;
    options.duration_hours = 6.0;
    return GenerateTrace(carbon::TraceProfile::kCisoMarch, options);
  }

  ExperimentConfig Config(Application app, Scheme scheme,
                          const carbon::CarbonTrace* trace) {
    ExperimentConfig config;
    config.app = app;
    config.scheme = scheme;
    config.trace = trace;
    config.duration_hours = 6.0;
    config.num_gpus = 4;
    config.sizing_gpus = 4;
    config.seed = 11;
    return config;
  }

  ExperimentHarness harness_{&DefaultZoo()};
};

TEST_F(IntegrationFixture, BaseServesAtSlaWithHighestAccuracy) {
  const auto trace = MakeTrace();
  const RunReport report =
      harness_.Run(Config(Application::kClassification, Scheme::kBase,
                          &trace));
  EXPECT_GT(report.completions, 100000u);
  EXPECT_NEAR(report.weighted_accuracy, 84.4, 0.01);  // all-B7
  EXPECT_LE(report.overall_p95_ms, report.params.l_tail_ms * 1.1);
  EXPECT_GT(report.total_carbon_g, 0.0);
  EXPECT_EQ(report.windows.size(), 6u * 12u);
}

TEST_F(IntegrationFixture, Co2OptSavesMostCarbonAtLowestAccuracy) {
  const auto trace = MakeTrace();
  const RunReport base = harness_.Run(
      Config(Application::kClassification, Scheme::kBase, &trace));
  const RunReport co2 = harness_.Run(
      Config(Application::kClassification, Scheme::kCo2Opt, &trace));
  EXPECT_GT(co2.CarbonSavePctVs(base), 50.0);
  EXPECT_NEAR(co2.weighted_accuracy, 78.8, 0.01);  // all-B1
  // CO2OPT keeps the SLA: the smallest variant is fast even on 1g slices.
  EXPECT_LE(co2.overall_p95_ms, base.params.l_tail_ms);
}

TEST_F(IntegrationFixture, CloverSavesCarbonWithSmallAccuracyLoss) {
  const auto trace = MakeTrace();
  const RunReport base = harness_.Run(
      Config(Application::kClassification, Scheme::kBase, &trace));
  const RunReport clover = harness_.Run(
      Config(Application::kClassification, Scheme::kClover, &trace));
  // The headline shape at reduced scale: big carbon saving, small accuracy
  // loss, SLA respected, optimization overhead low.
  EXPECT_GT(clover.CarbonSavePctVs(base), 40.0);
  EXPECT_LT(clover.AccuracyLossPctVs(base), 7.0);
  EXPECT_LE(clover.overall_p95_ms, base.params.l_tail_ms * 1.25);
  EXPECT_GT(clover.optimizations.size(), 0u);
  const double overhead_pct =
      clover.optimization_seconds / (6.0 * 3600.0) * 100.0;
  EXPECT_LT(overhead_pct, 15.0);
}

TEST_F(IntegrationFixture, OracleDominatesOrMatchesClover) {
  const auto trace = MakeTrace();
  const RunReport base = harness_.Run(
      Config(Application::kClassification, Scheme::kBase, &trace));
  const RunReport clover = harness_.Run(
      Config(Application::kClassification, Scheme::kClover, &trace));
  const RunReport oracle = harness_.Run(
      Config(Application::kClassification, Scheme::kOracle, &trace));
  // Oracle pays zero optimization cost and is offline-optimal within the
  // standardized space; Clover should land near it (paper: within ~5%).
  EXPECT_GT(oracle.CarbonSavePctVs(base), 40.0);
  EXPECT_GE(oracle.CarbonSavePctVs(base) + 10.0,
            clover.CarbonSavePctVs(base));
  EXPECT_EQ(oracle.optimization_seconds, 0.0);
}

TEST_F(IntegrationFixture, DeterministicReports) {
  const auto trace = MakeTrace();
  const RunReport a = harness_.Run(
      Config(Application::kLanguage, Scheme::kClover, &trace));
  const RunReport b = harness_.Run(
      Config(Application::kLanguage, Scheme::kClover, &trace));
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_DOUBLE_EQ(a.total_carbon_g, b.total_carbon_g);
  EXPECT_DOUBLE_EQ(a.weighted_accuracy, b.weighted_accuracy);
  EXPECT_EQ(a.optimizations.size(), b.optimizations.size());
}

TEST_F(IntegrationFixture, ObjectiveSeriesAlignsWithWindows) {
  const auto trace = MakeTrace();
  const RunReport report = harness_.Run(
      Config(Application::kDetection, Scheme::kClover, &trace));
  EXPECT_EQ(report.objective_series.size(), report.windows.size());
}

}  // namespace
}  // namespace clover::core
