// Tests for the discrete-event cluster simulator: event queue order,
// Poisson arrivals, conservation laws, latency semantics, energy windows,
// reconfiguration draining, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "carbon/trace.h"
#include "common/check.h"
#include "common/units.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"
#include "sim/event_queue.h"

namespace clover::sim {
namespace {

using models::Application;
using models::DefaultZoo;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  RngStream rng(3, "eq");
  for (int i = 0; i < 1000; ++i)
    queue.Push(Event{rng.NextDouble() * 100.0, i, 0.0});
  double previous = -1.0;
  while (!queue.Empty()) {
    const Event e = queue.Pop();
    EXPECT_GE(e.time, previous);
    previous = e.time;
  }
}

TEST(Arrivals, PoissonMeanRate) {
  PoissonArrivals arrivals(50.0, 7);
  double last = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) last = arrivals.NextArrivalTime();
  EXPECT_NEAR(last, n / 50.0, n / 50.0 * 0.02);
}

TEST(Arrivals, SizingRuleMatchesBaseUtilization) {
  const double rate = SizeArrivalRate(DefaultZoo(),
                                      Application::kClassification, 10, 0.75);
  const auto& family =
      DefaultZoo().ForApplication(Application::kClassification);
  const double service_s =
      perf::PerfModel::LatencyMs(family, family.Largest(),
                                 mig::SliceType::k7g) /
      1e3;
  EXPECT_NEAR(rate * service_s / 10.0, 0.75, 1e-9);
}

carbon::CarbonTrace FlatTrace(double ci = 200.0) {
  return carbon::CarbonTrace("flat", 3600.0, std::vector<double>(100, ci));
}

SimOptions Options(double rate, std::uint64_t seed = 1) {
  SimOptions options;
  options.arrival_rate_qps = rate;
  options.window_seconds = 300.0;
  options.seed = seed;
  return options;
}

TEST(ClusterSim, ConservationOfRequests) {
  const auto trace = FlatTrace();
  serving::Deployment base = serving::MakeBase(Application::kClassification,
                                               4);
  const double rate =
      SizeArrivalRate(DefaultZoo(), Application::kClassification, 4, 0.7);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(rate));
  sim.AdvanceTo(1800.0);
  // completions + in-flight + queued == arrivals; in-flight <= instances.
  const std::uint64_t in_flight_and_queued =
      sim.total_arrivals() - sim.total_completions();
  EXPECT_LE(in_flight_and_queued, sim.queue_depth() + 4);
  EXPECT_GT(sim.total_completions(), 0u);
}

TEST(ClusterSim, LatencyNeverBelowServiceFloor) {
  const auto trace = FlatTrace();
  serving::Deployment base = serving::MakeBase(Application::kLanguage, 2);
  const auto& family = DefaultZoo().ForApplication(Application::kLanguage);
  const double service_ms = perf::PerfModel::LatencyMs(
      family, family.Largest(), mig::SliceType::k7g);
  const double rate = 2.0 * 0.5 * 1e3 / service_ms;
  ClusterSim sim(base, DefaultZoo(), &trace, Options(rate));
  sim.AdvanceTo(600.0);
  const Measurement m = sim.Measure(600.0);
  // Jitter is truncated at -3 sigma => floor at ~0.76x base service time.
  EXPECT_GE(m.p95_ms, service_ms * 0.7);
  EXPECT_GT(m.completions, 100u);
}

TEST(ClusterSim, UtilizationTargetsHold) {
  // At the sizing rule's 75%, BASE must be stable: completions track
  // arrivals and the queue stays shallow.
  const auto trace = FlatTrace();
  serving::Deployment base =
      serving::MakeBase(Application::kClassification, 10);
  const double rate =
      SizeArrivalRate(DefaultZoo(), Application::kClassification, 10, 0.75);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(rate));
  sim.AdvanceTo(3600.0);
  const double served_ratio =
      static_cast<double>(sim.total_completions()) /
      static_cast<double>(sim.total_arrivals());
  EXPECT_GT(served_ratio, 0.99);
  EXPECT_LT(sim.queue_depth(), 50u);
}

TEST(ClusterSim, OverloadGrowsQueue) {
  const auto trace = FlatTrace();
  serving::Deployment base = serving::MakeBase(Application::kDetection, 1);
  const auto& family = DefaultZoo().ForApplication(Application::kDetection);
  const double capacity =
      1e3 / perf::PerfModel::LatencyMs(family, family.Largest(),
                                       mig::SliceType::k7g);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(capacity * 2.0));
  sim.AdvanceTo(1200.0);
  EXPECT_GT(sim.queue_depth(), 100u);
  // And the measured p95 reflects the backlog.
  const Measurement m = sim.Measure(300.0);
  EXPECT_GT(m.p95_ms, 10000.0);
}

TEST(ClusterSim, DeterministicForFixedSeed) {
  const auto trace = FlatTrace();
  auto run = [&](std::uint64_t seed) {
    serving::Deployment base =
        serving::MakeBase(Application::kClassification, 4);
    const double rate =
        SizeArrivalRate(DefaultZoo(), Application::kClassification, 4, 0.75);
    ClusterSim sim(base, DefaultZoo(), &trace, Options(rate, seed));
    sim.AdvanceTo(3600.0);
    return std::make_tuple(sim.total_arrivals(), sim.total_completions(),
                           sim.total_energy_j(), sim.OverallP95Ms());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(ClusterSim, WindowEnergyMatchesMeterIdentity) {
  // An idle cluster (no arrivals possible? rate must be >0; use tiny rate)
  // draws static power only, so each 300 s window is ~static * gpus * 300 J.
  const auto trace = FlatTrace(100.0);
  serving::Deployment base = serving::MakeBase(Application::kLanguage, 3);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(1e-3));
  sim.AdvanceTo(1500.0);
  ASSERT_GE(sim.windows().size(), 4u);
  const double static_w = power::PowerModel::StaticWattsPerGpu() * 3;
  for (const WindowRecord& window : sim.windows()) {
    EXPECT_NEAR(window.energy_j, static_w * 300.0,
                0.2 * static_w * 300.0);  // tiny dynamic residue allowed
    // Carbon = energy * ci * pue identity.
    EXPECT_NEAR(window.carbon_g,
                CarbonGrams(window.energy_j, window.ci, perf::kPue), 1e-9);
  }
}

TEST(ClusterSim, PartitionedClusterUsesLessEnergyPerRequest) {
  // The Fig. 3 effect: same variant, finer partition => lower energy per
  // request at equal load.
  const auto trace = FlatTrace();
  const auto& family =
      DefaultZoo().ForApplication(Application::kClassification);
  (void)family;
  const double rate =
      SizeArrivalRate(DefaultZoo(), Application::kClassification, 4, 0.5);

  serving::Deployment full =
      serving::MakeUniform(Application::kClassification, 4, 1, 2);  // B5@7g
  ClusterSim sim_full(full, DefaultZoo(), &trace, Options(rate));
  sim_full.AdvanceTo(600.0);
  const Measurement m_full = sim_full.Measure(1200.0);

  serving::Deployment fine =
      serving::MakeUniform(Application::kClassification, 4, 19, 2);  // B5@1g
  ClusterSim sim_fine(fine, DefaultZoo(), &trace, Options(rate));
  sim_fine.AdvanceTo(600.0);
  const Measurement m_fine = sim_fine.Measure(1200.0);

  EXPECT_LT(m_fine.energy_per_request_j, m_full.energy_per_request_j);
  // ... at the cost of latency (Opportunity 2's trade-off).
  EXPECT_GT(m_fine.p95_ms, m_full.p95_ms);
}

TEST(ClusterSim, ReconfigurationDrainsAndPausesAffectedGpus) {
  const auto trace = FlatTrace();
  serving::Deployment base =
      serving::MakeBase(Application::kClassification, 2);
  const double rate =
      SizeArrivalRate(DefaultZoo(), Application::kClassification, 2, 0.6);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(rate));
  sim.AdvanceTo(300.0);
  const std::uint64_t before = sim.total_completions();

  serving::Deployment next = base;
  next.gpus[0].layout_id = 19;
  next.gpus[0].variant_ordinals.assign(7, 0);
  const double ready = sim.ApplyDeployment(next);
  EXPECT_GT(ready, sim.now());  // gpu0 offline for repartition + load

  sim.AdvanceTo(ready + 600.0);
  EXPECT_GT(sim.total_completions(), before);  // service continued
  EXPECT_EQ(sim.deployment().gpus[0].layout_id, 19);
}

TEST(ClusterSim, ZeroCostReconfigurationIsImmediate) {
  const auto trace = FlatTrace();
  serving::Deployment base =
      serving::MakeBase(Application::kClassification, 2);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(10.0));
  sim.AdvanceTo(100.0);
  serving::Deployment next =
      serving::MakeCo2Opt(Application::kClassification, 2, DefaultZoo());
  const mig::RepartitionCostModel free{0.0, 0.0, 0.0};
  const double ready = sim.ApplyDeployment(next, free);
  EXPECT_LE(ready - sim.now(), 1e-9);
}

TEST(ClusterSim, MeasureReportsThroughputAndEnergy) {
  const auto trace = FlatTrace();
  serving::Deployment base =
      serving::MakeBase(Application::kClassification, 4);
  const double rate =
      SizeArrivalRate(DefaultZoo(), Application::kClassification, 4, 0.75);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(rate));
  sim.AdvanceTo(600.0);
  const Measurement m = sim.Measure(300.0);
  EXPECT_NEAR(m.throughput_qps, rate, rate * 0.1);
  EXPECT_GT(m.energy_per_request_j, 0.0);
  EXPECT_GT(m.weighted_accuracy, 80.0);  // all-B7 serving
  EXPECT_DOUBLE_EQ(m.duration_s, 300.0);
}

TEST(ClusterSim, AdvanceBackwardsRejected) {
  const auto trace = FlatTrace();
  serving::Deployment base = serving::MakeBase(Application::kLanguage, 1);
  ClusterSim sim(base, DefaultZoo(), &trace, Options(1.0));
  sim.AdvanceTo(100.0);
  EXPECT_THROW(sim.AdvanceTo(50.0), CheckError);
}

}  // namespace
}  // namespace clover::sim
