// SurrogateEvaluator (opt/surrogate.h) differential + screening tests.
//
// The surrogate is the fast fidelity tier of screen-then-simulate: it is
// allowed to be approximate (it only ranks candidates) but it must not be
// *systematically* wrong about the p95 tail, or the screen would discard
// exactly the configurations the simulation tier should see. The
// differential gate here sweeps the same (c, rho) grid as
// sim_differential_test.cc — a BASE deployment of c full-GPU instances
// under ServiceModel::kExponential is exactly the M/M/c queue the
// surrogate's closed-form sojourn quantile models — and bounds the
// surrogate-vs-simulated p95 gap. The screening tests pin the contract the
// searches rely on: SLA-first ranking, survivors in sampling order, a
// deterministic screen, and surrogate outcomes never leaking into results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/units.h"
#include "graph/config_graph.h"
#include "models/zoo.h"
#include "opt/evaluator.h"
#include "opt/random_search.h"
#include "opt/surrogate.h"
#include "perf/perf_model.h"
#include "serving/deployment.h"
#include "sim/analytic.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"

namespace clover::opt {
namespace {

using models::Application;

double ServiceRatePerServer() {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::ModelFamily& family =
      zoo.ForApplication(Application::kClassification);
  return 1.0 / MsToSeconds(perf::PerfModel::LatencyMs(
                   family, family.Largest(), mig::SliceType::k7g));
}

// Simulated p95 sojourn over ~target_completions post-warmup requests for
// an M/M/c BASE cluster (the sim_differential_test.cc setup).
double SimulatedP95Ms(int servers, double rho, std::uint64_t seed,
                      double target_completions) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const double mu = ServiceRatePerServer();
  const double lambda = rho * servers * mu;

  static const carbon::CarbonTrace kFlat("surrogate-flat", 3600.0,
                                         std::vector<double>(4000, 250.0));
  sim::SimOptions options;
  options.arrival_rate_qps = lambda;
  options.seed = seed;
  options.window_seconds = 600.0;
  options.service_model = sim::ServiceModel::kExponential;
  sim::ClusterSim sim(
      serving::MakeBase(Application::kClassification, servers), zoo, &kFlat,
      options);
  // The run-level histogram includes the warmup, but the transient from an
  // empty start only *shortens* latencies; with >= 200k post-warmup samples
  // its weight is negligible at the histogram's own resolution.
  sim.AdvanceTo(3000.0 / lambda + 50.0 / mu + target_completions / lambda);
  return sim.OverallQuantileMs(0.95);
}

double SurrogateP95Ms(int servers, double rho) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const double mu = ServiceRatePerServer();
  SurrogateEvaluator::Options options;
  options.arrival_rate_qps = rho * servers * mu;
  options.service_model = sim::ServiceModel::kExponential;
  SurrogateEvaluator surrogate(&zoo, servers, options);
  const graph::ConfigGraph base = graph::ConfigGraph::FromDeployment(
      serving::MakeBase(Application::kClassification, servers), zoo);
  return surrogate.Evaluate(base).metrics.p95_ms;
}

TEST(SurrogateDifferential, P95MatchesSimulatorAcrossTheGrid) {
  // Same grid as the simulator-vs-oracle gate. Tolerance: the simulated
  // p95 carries the log-histogram bin width (~2.3% relative) plus tail
  // sampling noise at 200k completions; 10% relative catches a systematic
  // tail bias (e.g. a wrong wait-probability mix) with room to spare.
  const std::vector<int> server_grid = {1, 2, 4, 8};
  const std::vector<double> rho_grid = {0.35, 0.6, 0.8};
  std::uint64_t seed = 5000;
  for (int servers : server_grid) {
    for (double rho : rho_grid) {
      const double simulated =
          SimulatedP95Ms(servers, rho, ++seed, 200000.0);
      const double analytic = SurrogateP95Ms(servers, rho);
      EXPECT_NEAR(analytic, simulated, 0.10 * simulated)
          << "c=" << servers << " rho=" << rho << " (surrogate " << analytic
          << " ms vs sim " << simulated << " ms)";
    }
  }
  // High-load corners: longer, autocorrelated tails -> a wider band.
  for (int servers : {1, 4}) {
    const double simulated = SimulatedP95Ms(servers, 0.9, ++seed, 400000.0);
    const double analytic = SurrogateP95Ms(servers, 0.9);
    EXPECT_NEAR(analytic, simulated, 0.15 * simulated)
        << "c=" << servers << " rho=0.9";
  }
}

TEST(SurrogateDifferential, SojournQuantileExactForMm1) {
  // M/M/1 sojourn time is Exp(mu - lambda): the quantile has a closed form
  // the bisection must reproduce to solver precision.
  sim::analytic::MmcConfig config;
  config.servers = 1;
  config.service_rate = 10.0;
  config.arrival_rate = 7.0;
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = -std::log(1.0 - q) /
                         (config.service_rate - config.arrival_rate);
    EXPECT_NEAR(SurrogateEvaluator::MmcSojournQuantile(config, q), exact,
                1e-9 * exact)
        << "q=" << q;
  }
}

TEST(SurrogateDifferential, SojournQuantileMonotoneAndBounded) {
  sim::analytic::MmcConfig config;
  config.servers = 4;
  config.service_rate = 5.0;
  config.arrival_rate = 14.0;
  double previous = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double t = SurrogateEvaluator::MmcSojournQuantile(config, q);
    EXPECT_GT(t, previous);
    // Sojourn >= service: the quantile dominates the pure-service quantile.
    EXPECT_GE(t, -std::log(1.0 - q) / config.service_rate * 0.999);
    previous = t;
  }
}

TEST(SurrogateEvaluatorTest, OverloadedConfigurationGetsTheSentinel) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  SurrogateEvaluator::Options options;
  options.arrival_rate_qps =
      4.0 * sim::SizeArrivalRate(zoo, Application::kClassification, 1);
  options.l_tail_ms = 100.0;
  SurrogateEvaluator surrogate(&zoo, 1, options);
  const graph::ConfigGraph tiny = graph::ConfigGraph::FromDeployment(
      serving::MakeBase(Application::kClassification, 1), zoo);
  const EvalOutcome outcome = surrogate.Evaluate(tiny);
  EXPECT_FALSE(outcome.sla_ok);
  EXPECT_GE(outcome.metrics.p95_ms, 1e6);
  EXPECT_EQ(outcome.metrics.accuracy, 0.0);
}

// --------------------------------------------------------------------------
// Screening contract.
// --------------------------------------------------------------------------

TEST(ScreenCandidatesTest, PrefersSlaCompliantAndKeepsSamplingOrder) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  // Rate sized for 4 GPUs: the 1-GPU candidate is overloaded (sentinel,
  // sla_ok=false), the 4-GPU candidates are compliant.
  SurrogateEvaluator::Options options;
  options.arrival_rate_qps =
      sim::SizeArrivalRate(zoo, Application::kClassification, 4);
  options.l_tail_ms = 1e9;
  SurrogateEvaluator surrogate(&zoo, 4, options);

  const graph::ConfigGraph overloaded = graph::ConfigGraph::FromDeployment(
      serving::MakeBase(Application::kClassification, 1), zoo);
  const graph::ConfigGraph base = graph::ConfigGraph::FromDeployment(
      serving::MakeBase(Application::kClassification, 4), zoo);
  const graph::ConfigGraph co2opt = graph::ConfigGraph::FromDeployment(
      serving::MakeCo2Opt(Application::kClassification, 4, zoo), zoo);

  ObjectiveParams params;
  params.a_base = 80.0;
  params.c_base_g = 1.0;
  params.l_tail_ms = 1e9;
  const std::vector<graph::ConfigGraph> pool{overloaded, base, co2opt};

  // keep >= pool: everything survives untouched.
  EXPECT_EQ(ScreenCandidates(&surrogate, pool, params, 250.0, 3).size(), 3u);

  // keep = 2: the overloaded candidate is the one screened out, and the
  // survivors come back in sampling order (ascending indices).
  const std::vector<std::size_t> survivors =
      ScreenCandidates(&surrogate, pool, params, 250.0, 2);
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0], 1u);
  EXPECT_EQ(survivors[1], 2u);

  // Deterministic: same inputs, same survivors.
  EXPECT_EQ(ScreenCandidates(&surrogate, pool, params, 250.0, 2), survivors);
}

// Replay-evaluator search context (the opt_parallel_test.cc recipe).
struct ScreenContext {
  const models::ModelZoo* zoo;
  carbon::CarbonTrace trace;
  ReplayEvaluator::Options replay;
  ObjectiveParams params;
  graph::ConfigGraph start;
  static constexpr int kGpus = 2;
  static constexpr std::uint64_t kSeed = 23;
  static constexpr double kCi = 250.0;

  ScreenContext()
      : zoo(&models::DefaultZoo()),
        trace("flat", 3600.0, std::vector<double>(4, 250.0)),
        start(Application::kClassification, kGpus) {
    replay.arrival_rate_qps =
        sim::SizeArrivalRate(*zoo, Application::kClassification, kGpus);
    replay.settle_s = 1.0;
    replay.measure_window_s = 3.0;
    replay.seed = kSeed;
    start = graph::ConfigGraph::FromDeployment(
        serving::MakeBase(Application::kClassification, kGpus), *zoo);
    replay = ReplayEvaluator::CalibrateAgainst(zoo, &trace, kGpus, start,
                                               replay, kCi, &params);
  }

  SearchResult RunScreened(int screen_factor, int threads,
                           bool install_surrogate = true) {
    ReplayEvaluator evaluator(zoo, &trace, kGpus, replay);
    graph::GraphMapper mapper(zoo, kGpus);
    SurrogateEvaluator surrogate(
        zoo, kGpus,
        SurrogateEvaluator::FromReplay(replay, sim::ServiceModel::kJittered,
                                       perf::kServiceJitterSigma));
    RandomSearch::Options options;
    options.max_evaluations = 24;
    options.no_improve_limit = 1 << 30;
    options.time_budget_s = 1e12;
    options.batch_size = 8;
    options.screen_factor = screen_factor;
    RandomSearch search(&evaluator, &mapper, options, kSeed);
    if (install_surrogate) search.SetSurrogate(&surrogate);

    ThreadPool pool(threads);
    std::vector<std::unique_ptr<Evaluator>> replicas;
    for (int i = 0; i < threads; ++i)
      replicas.push_back(
          std::make_unique<ReplayEvaluator>(zoo, &trace, kGpus, replay));
    ParallelBatchEvaluator batch(&pool, std::move(replicas));
    search.SetBatchEvaluator(&batch);
    return search.Run(start, params, kCi);
  }
};

TEST(ScreenedSearchTest, DeterministicAcrossThreadCounts) {
  ScreenContext context;
  const SearchResult serial = context.RunScreened(/*screen_factor=*/4, 1);
  const SearchResult parallel = context.RunScreened(/*screen_factor=*/4, 2);
  EXPECT_TRUE(SearchResultsBitIdentical(serial, parallel));
  EXPECT_GT(serial.screened, 0);
}

TEST(ScreenedSearchTest, ScreenedCountMatchesTheOversampling) {
  // Every proposal round draws screen_factor x round candidates and keeps
  // round of them, so the discard count is exactly (factor - 1) x the
  // number of non-seed evaluations.
  ScreenContext context;
  const SearchResult result = context.RunScreened(/*screen_factor=*/4, 1);
  const int simulated = static_cast<int>(result.evaluations.size()) - 1;
  EXPECT_EQ(result.screened, 3 * simulated);
}

TEST(ScreenedSearchTest, FactorOneMatchesTheUnscreenedSearch) {
  // screen_factor = 1 with a surrogate installed must be a no-op: same
  // samples, same evaluations, same best, zero screened.
  ScreenContext context;
  const SearchResult screened = context.RunScreened(/*screen_factor=*/1, 1);
  const SearchResult plain =
      context.RunScreened(/*screen_factor=*/1, 1, /*install_surrogate=*/false);
  EXPECT_TRUE(SearchResultsBitIdentical(screened, plain));
  EXPECT_EQ(screened.screened, 0);
}

TEST(ScreenedSearchTest, BestOutcomeComesFromTheSimulationTier) {
  // The surrogate only ranks; the winner's metrics must be one of the
  // recorded (simulated) evaluations, bit for bit.
  ScreenContext context;
  const SearchResult result = context.RunScreened(/*screen_factor=*/4, 1);
  bool found = false;
  for (const EvalRecord& record : result.evaluations) {
    if (record.f == result.best_f &&
        record.metrics.p95_ms == result.best_metrics.p95_ms &&
        record.graph == result.best) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace clover::opt
