// Tests for deployments, the reconfiguration planner, and the threaded
// serving runtime.
#include <gtest/gtest.h>

#include "common/check.h"
#include "serving/deployment.h"
#include "serving/reconfig_planner.h"
#include "serving/runtime.h"

namespace clover::serving {
namespace {

using models::Application;
using models::DefaultZoo;

TEST(Deployment, BaseHostsLargestVariantUnpartitioned) {
  const Deployment base = MakeBase(Application::kClassification, 10);
  base.Validate(DefaultZoo());
  EXPECT_EQ(base.NumGpus(), 10);
  EXPECT_EQ(base.NumInstances(), 10);
  for (const GpuAssignment& gpu : base.gpus) {
    EXPECT_EQ(gpu.layout_id, 1);
    EXPECT_EQ(gpu.variant_ordinals.size(), 1u);
    EXPECT_EQ(gpu.variant_ordinals[0], 3);  // EfficientNet-B7
  }
}

TEST(Deployment, Co2OptHostsSmallestOnFinestPartition) {
  const Deployment co2 = MakeCo2Opt(Application::kDetection, 10, DefaultZoo());
  co2.Validate(DefaultZoo());
  EXPECT_EQ(co2.NumInstances(), 70);
  for (const GpuAssignment& gpu : co2.gpus) {
    EXPECT_EQ(gpu.layout_id, 19);
    for (int ordinal : gpu.variant_ordinals) EXPECT_EQ(ordinal, 0);
  }
}

TEST(Deployment, ValidateRejectsOomPlacement) {
  // EfficientNet-B7 (needs >5 GB) on a 1g slice must fail validation.
  Deployment bad = MakeUniform(Application::kClassification, 1, 19, 3);
  EXPECT_THROW(bad.Validate(DefaultZoo()), CheckError);
  EXPECT_FALSE(bad.IsFeasible(DefaultZoo()));
}

TEST(Deployment, ValidateRejectsArityMismatch) {
  Deployment d = MakeBase(Application::kLanguage, 2);
  d.gpus[0].variant_ordinals.push_back(0);  // layout 1 has a single slice
  EXPECT_THROW(d.Validate(DefaultZoo()), CheckError);
}

TEST(Deployment, EmptySlicesAreNotInstances) {
  Deployment d = MakeUniform(Application::kLanguage, 1, 19, 0);
  d.gpus[0].variant_ordinals[3] = kEmptySlice;
  d.gpus[0].variant_ordinals[5] = kEmptySlice;
  EXPECT_EQ(d.NumInstances(), 5);
  EXPECT_EQ(d.Instances().size(), 5u);
  d.Validate(DefaultZoo());
}

TEST(Deployment, AllEmptyIsInvalid) {
  Deployment d = MakeUniform(Application::kLanguage, 1, 1, 0);
  d.gpus[0].variant_ordinals[0] = kEmptySlice;
  EXPECT_THROW(d.Validate(DefaultZoo()), CheckError);
}

TEST(ReconfigPlanner, NoChangeNoCost) {
  const Deployment d = MakeBase(Application::kDetection, 4);
  const ReconfigPlan plan = PlanReconfiguration(d, d, DefaultZoo());
  EXPECT_TRUE(plan.Empty());
  EXPECT_DOUBLE_EQ(plan.MaxOfflineSeconds(), 0.0);
}

TEST(ReconfigPlanner, VariantSwapTouchesOnlyChangedGpu) {
  const Deployment from = MakeBase(Application::kClassification, 4);
  Deployment to = from;
  to.gpus[2].variant_ordinals[0] = 1;  // B7 -> B3 on gpu2 only
  const ReconfigPlan plan = PlanReconfiguration(from, to, DefaultZoo());
  ASSERT_EQ(plan.gpus.size(), 1u);
  EXPECT_EQ(plan.gpus[0].gpu_index, 2);
  EXPECT_FALSE(plan.gpus[0].layout_changed);
  EXPECT_EQ(plan.gpus[0].instances_restarted, 1);
  EXPECT_GT(plan.gpus[0].offline_seconds, 0.0);
}

TEST(ReconfigPlanner, LayoutChangeRestartsEverything) {
  const Deployment from = MakeBase(Application::kClassification, 2);
  const Deployment to =
      MakeCo2Opt(Application::kClassification, 2, DefaultZoo());
  const ReconfigPlan plan = PlanReconfiguration(from, to, DefaultZoo());
  ASSERT_EQ(plan.gpus.size(), 2u);
  for (const GpuReconfigPlan& gpu : plan.gpus) {
    EXPECT_TRUE(gpu.layout_changed);
    EXPECT_EQ(gpu.instances_restarted, 7);
  }
  // Larger models load slower: repartitioning to BASE (B7) costs more than
  // to CO2OPT (B1).
  const ReconfigPlan back = PlanReconfiguration(to, from, DefaultZoo());
  EXPECT_GT(back.MaxOfflineSeconds(), plan.MaxOfflineSeconds());
}

TEST(ReconfigPlanner, MismatchedClustersRejected) {
  const Deployment a = MakeBase(Application::kDetection, 2);
  const Deployment b = MakeBase(Application::kDetection, 3);
  EXPECT_THROW(PlanReconfiguration(a, b, DefaultZoo()), CheckError);
}

// --- Threaded runtime ---

InferenceRuntime::Options FastOptions() {
  InferenceRuntime::Options options;
  options.time_scale = 1e-4;  // 30 ms simulated -> 3 us wall
  return options;
}

TEST(Runtime, ServesEverySubmittedRequest) {
  const Deployment d = MakeUniform(Application::kClassification, 2, 19, 0);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  constexpr int kRequests = 500;
  for (int i = 0; i < kRequests; ++i) ASSERT_TRUE(runtime.Submit());
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  std::uint64_t served = 0;
  for (std::uint64_t s : stats.served_per_instance) served += s;
  EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));
}

TEST(Runtime, AccuracyGreedyDispatchPrefersBigModels) {
  // One B7-on-7g instance + seven B1-on-1g instances: under light load the
  // B7 instance should take a disproportionate share.
  Deployment d;
  d.app = Application::kClassification;
  {
    GpuAssignment gpu;
    gpu.layout_id = 1;
    gpu.variant_ordinals = {3};  // B7
    d.gpus.push_back(gpu);
  }
  {
    GpuAssignment gpu;
    gpu.layout_id = 19;
    gpu.variant_ordinals.assign(7, 0);  // B1
    d.gpus.push_back(gpu);
  }
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(runtime.Submit());
    // Pace submissions so the queue never backs up: the dispatcher should
    // always find the B7 instance idle first.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  ASSERT_EQ(stats.served_per_instance.size(), 8u);
  // Weighted accuracy must sit strictly above all-B1 serving.
  EXPECT_GT(stats.weighted_accuracy, 78.8);
}

TEST(Runtime, SubmitAfterDrainFails) {
  const Deployment d = MakeUniform(Application::kLanguage, 1, 1, 3);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  ASSERT_TRUE(runtime.Submit());
  runtime.Drain();
  EXPECT_FALSE(runtime.Submit());
}

TEST(Runtime, RateZeroStartDrainsCleanlyWithNoArrivals) {
  // A runtime whose producer never submits (a fleet region routed to
  // weight 0, or a silenced fault window) must start and drain without
  // deadlock, with a zeroed but consistent latency store.
  const Deployment d = MakeUniform(Application::kClassification, 2, 19, 0);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_DOUBLE_EQ(stats.p95_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(stats.weighted_accuracy, 0.0);
  for (std::uint64_t served : stats.served_per_instance)
    EXPECT_EQ(served, 0u);
  // Drain is idempotent, and Submit after it refuses politely.
  runtime.Drain();
  EXPECT_FALSE(runtime.Submit());
}

TEST(Runtime, NeverStartedRuntimeDestructsCleanly) {
  const Deployment d = MakeUniform(Application::kClassification, 1, 1, 3);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  const auto stats = runtime.SnapshotStats();
  EXPECT_EQ(stats.submitted, 0u);
  // Destructor calls Drain() on a runtime with no threads.
}

TEST(Runtime, FaultWindowArrivalGapsKeepStoreConsistent) {
  // Arrivals in bursts separated by dead windows (the offered-load shape a
  // flash crowd + outage produces): every burst must fully drain, the
  // store stays consistent after each gap, and intermediate snapshots are
  // safe while workers are mid-flight.
  const Deployment d = MakeUniform(Application::kClassification, 2, 19, 0);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  std::uint64_t submitted = 0;
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(runtime.Submit());
      ++submitted;
    }
    // Quiet window: long enough for the backlog to clear at the fast time
    // scale, so the next burst starts against idle instances.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto mid = runtime.SnapshotStats();
    EXPECT_EQ(mid.submitted, submitted);
    EXPECT_LE(mid.completed, mid.submitted);
  }
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.completed, submitted);
  std::uint64_t served = 0;
  for (std::uint64_t s : stats.served_per_instance) served += s;
  EXPECT_EQ(served, submitted);
  EXPECT_GT(stats.p95_latency_ms, 0.0);
  EXPECT_GE(stats.p95_latency_ms, stats.mean_latency_ms * 0.5);
}

TEST(Runtime, QueuePressureBlocksSubmitUntilDrained) {
  // A tiny queue under a burst exercises the queue_not_full_ path (Submit
  // blocks, then proceeds) without deadlocking against Drain.
  InferenceRuntime::Options options = FastOptions();
  options.queue_capacity = 8;
  const Deployment d = MakeUniform(Application::kClassification, 1, 19, 0);
  InferenceRuntime runtime(d, DefaultZoo(), options);
  runtime.Start();
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(runtime.Submit());
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  EXPECT_EQ(stats.completed, 300u);
}

TEST(Runtime, SnapshotStatsIsConstAndRepeatable) {
  // Regression for the const contract: SnapshotStats used to feed the
  // latency buffer to a mutating quantile query under the mutex, so it
  // could not be const and back-to-back snapshots could disagree. With
  // the fold-on-read sharded store it is const (this call compiles
  // through a const reference) and pure: identical snapshots, any number
  // of times, with no writers running.
  const Deployment d = MakeUniform(Application::kClassification, 2, 19, 0);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(runtime.Submit());
  runtime.Drain();

  const InferenceRuntime& const_runtime = runtime;
  const auto first = const_runtime.SnapshotStats();
  const auto second = const_runtime.SnapshotStats();
  EXPECT_EQ(first.completed, 400u);
  EXPECT_EQ(second.completed, first.completed);
  EXPECT_EQ(second.p95_latency_ms, first.p95_latency_ms);
  EXPECT_EQ(second.mean_latency_ms, first.mean_latency_ms);
  EXPECT_EQ(second.weighted_accuracy, first.weighted_accuracy);
  EXPECT_GT(first.p95_latency_ms, 0.0);
}

TEST(Runtime, LatenciesAreAtLeastServiceTime) {
  const Deployment d = MakeUniform(Application::kDetection, 1, 1, 2);
  InferenceRuntime runtime(d, DefaultZoo(), FastOptions());
  runtime.Start();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(runtime.Submit());
  runtime.Drain();
  const auto stats = runtime.SnapshotStats();
  // p95 (in simulated ms) cannot be below the single-instance service time.
  EXPECT_GE(stats.p95_latency_ms, 100.0);  // YOLOv5x6 on 7g is ~170 ms
}

}  // namespace
}  // namespace clover::serving
