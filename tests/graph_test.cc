// Tests for the configuration graph, graph edit distance, graph<->deployment
// mapping, and neighbor sampling.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "graph/config_graph.h"
#include "graph/ged.h"
#include "graph/mapping.h"
#include "graph/neighbors.h"
#include "perf/perf_model.h"

namespace clover::graph {
namespace {

using models::Application;
using models::DefaultZoo;

ConfigGraph BaseGraph(Application app, int gpus) {
  return ConfigGraph::FromDeployment(serving::MakeBase(app, gpus),
                                     DefaultZoo());
}

TEST(ConfigGraph, FromBaseDeployment) {
  const ConfigGraph g = BaseGraph(Application::kClassification, 10);
  EXPECT_EQ(g.TotalInstances(), 10);
  EXPECT_EQ(g.Weight(3, mig::SliceType::k7g), 10);
  EXPECT_EQ(g.Weight(0, mig::SliceType::k1g), 0);
  const mig::SliceCounts demand = g.SliceDemand();
  EXPECT_EQ(demand[static_cast<std::size_t>(mig::SliceType::k7g)], 10);
}

TEST(ConfigGraph, IsolationQuotient) {
  // Two deployments that differ only in *which* GPU hosts which slice map
  // to the same graph (the paper's first argument for graph space).
  serving::Deployment a;
  a.app = Application::kClassification;
  a.gpus.push_back({3, {0, 1, 2}});   // layout 3 = [4g 2g 1g]
  a.gpus.push_back({1, {3}});         // 7g with B7
  serving::Deployment b;
  b.app = Application::kClassification;
  b.gpus.push_back({1, {3}});
  b.gpus.push_back({3, {0, 1, 2}});
  EXPECT_EQ(ConfigGraph::FromDeployment(a, DefaultZoo()),
            ConfigGraph::FromDeployment(b, DefaultZoo()));
  EXPECT_EQ(ConfigGraph::FromDeployment(a, DefaultZoo()).Key(),
            ConfigGraph::FromDeployment(b, DefaultZoo()).Key());
}

TEST(ConfigGraph, AdditivityOverGpus) {
  // Graph of (n + m) uniform GPUs = graph of n plus graph of m, edge-wise
  // (the paper's second argument: additivity when scaling the cluster).
  const ConfigGraph g4 = BaseGraph(Application::kLanguage, 4);
  const ConfigGraph g6 = BaseGraph(Application::kLanguage, 6);
  const ConfigGraph g10 = BaseGraph(Application::kLanguage, 10);
  for (int v = 0; v < g10.num_variants(); ++v)
    for (mig::SliceType s : mig::kAllSliceTypes)
      EXPECT_EQ(g10.Weight(v, s), g4.Weight(v, s) + g6.Weight(v, s));
}

TEST(ConfigGraph, NegativeWeightRejected) {
  ConfigGraph g(Application::kDetection, 3);
  EXPECT_THROW(g.AddWeight(0, mig::SliceType::k1g, -1), CheckError);
  EXPECT_THROW(g.SetWeight(0, mig::SliceType::k1g, -2), CheckError);
}

TEST(Ged, MetricProperties) {
  const ConfigGraph a = BaseGraph(Application::kClassification, 4);
  ConfigGraph b = a;
  b.AddWeight(3, mig::SliceType::k7g, -1);
  b.AddWeight(1, mig::SliceType::k7g, +1);
  ConfigGraph c = b;
  c.AddWeight(1, mig::SliceType::k7g, -1);
  c.AddWeight(1, mig::SliceType::k3g, +1);

  EXPECT_EQ(GraphEditDistance(a, a), 0);
  EXPECT_EQ(GraphEditDistance(a, b), GraphEditDistance(b, a));
  EXPECT_EQ(GraphEditDistance(a, b), 2);  // one variant swap
  EXPECT_EQ(GraphEditDistance(b, c), 2);  // one slice move
  // Triangle inequality.
  EXPECT_LE(GraphEditDistance(a, c),
            GraphEditDistance(a, b) + GraphEditDistance(b, c));
}

TEST(Ged, PaperWorkedExample) {
  // Paper Fig. 7 step 2, comparison (i) -> (ii): four instances
  // [V1 V2 V1 V3]. Graph (i) has four weight-1 edges; graph (ii) rehosts
  // everything onto a disjoint edge set with two weight-1 edges and one
  // weight-2 edge (V1's two copies now share a slice type). The published
  // edit sequence — "removing all current edges of weight 1, and adding two
  // new edges of weight 1 and one edge of weight 2" — costs 4 + (1+1+2) =
  // 8, which is exactly sum |dw|.
  ConfigGraph i(Application::kClassification, 3);
  i.SetWeight(0, mig::SliceType::k3g, 1);
  i.SetWeight(1, mig::SliceType::k2g, 1);
  i.SetWeight(0, mig::SliceType::k1g, 1);
  i.SetWeight(2, mig::SliceType::k1g, 1);
  ConfigGraph ii(Application::kClassification, 3);
  ii.SetWeight(0, mig::SliceType::k2g, 2);  // the weight-2 edge
  ii.SetWeight(1, mig::SliceType::k3g, 1);
  ii.SetWeight(2, mig::SliceType::k2g, 1);
  EXPECT_EQ(GraphEditDistance(i, ii), 8);

  // Comparison (i) -> (iii): swapping the variant of a single instance is
  // distance 2 — the paper's "similar" example (distance < 4 threshold).
  ConfigGraph iii = i;
  iii.AddWeight(0, mig::SliceType::k3g, -1);
  iii.AddWeight(1, mig::SliceType::k3g, +1);
  EXPECT_EQ(GraphEditDistance(i, iii), 2);
  EXPECT_LT(GraphEditDistance(i, iii), GraphEditDistance(i, ii));
}

TEST(Mapping, RoundTripPreservesGraph) {
  GraphMapper mapper(&DefaultZoo(), 10);
  ConfigGraph g(Application::kClassification, 4);
  g.SetWeight(3, mig::SliceType::k7g, 2);   // 2x B7 on full GPUs
  g.SetWeight(1, mig::SliceType::k1g, 40);  // 40x B3 on 1g
  g.SetWeight(2, mig::SliceType::k2g, 6);   // 6x B5 on 2g
  ASSERT_TRUE(mapper.IsFeasible(g));
  const auto deployment = mapper.ToDeployment(g);
  ASSERT_TRUE(deployment.has_value());
  EXPECT_EQ(ConfigGraph::FromDeployment(*deployment, DefaultZoo()), g);
  EXPECT_EQ(deployment->NumGpus(), 10);
}

TEST(Mapping, OomEdgeInfeasible) {
  GraphMapper mapper(&DefaultZoo(), 2);
  ConfigGraph g(Application::kClassification, 4);
  g.SetWeight(3, mig::SliceType::k1g, 1);  // B7 on 1g: disabled edge
  EXPECT_FALSE(mapper.IsFeasible(g));
  EXPECT_EQ(mapper.ToDeployment(g), std::nullopt);
}

TEST(Mapping, DemandBeyondClusterInfeasible) {
  GraphMapper mapper(&DefaultZoo(), 2);
  ConfigGraph g(Application::kClassification, 4);
  g.SetWeight(0, mig::SliceType::k1g, 15);  // 15 > 2 x 7 slices
  EXPECT_FALSE(mapper.IsFeasible(g));
}

TEST(Mapping, EmptyGraphInfeasible) {
  GraphMapper mapper(&DefaultZoo(), 2);
  ConfigGraph g(Application::kClassification, 4);
  EXPECT_FALSE(mapper.IsFeasible(g));
}

TEST(Mapping, SurplusSlicesLeftEmpty) {
  GraphMapper mapper(&DefaultZoo(), 2);
  ConfigGraph g(Application::kLanguage, 4);
  g.SetWeight(0, mig::SliceType::k1g, 3);  // 3 instances on 2 GPUs
  const auto deployment = mapper.ToDeployment(g);
  ASSERT_TRUE(deployment.has_value());
  EXPECT_EQ(deployment->NumInstances(), 3);
  int total_slices = 0;
  for (const auto& gpu : deployment->gpus)
    total_slices += gpu.layout().NumSlices();
  EXPECT_GT(total_slices, 3);  // the rest exist but host nothing
}

class NeighborSweep : public ::testing::TestWithParam<Application> {};

TEST_P(NeighborSweep, SamplesAreFeasibleDistinctAndClose) {
  GraphMapper mapper(&DefaultZoo(), 10);
  NeighborSampler sampler(&mapper, 99);
  ConfigGraph center = BaseGraph(GetParam(), 10);
  for (int i = 0; i < 200; ++i) {
    const auto neighbor = sampler.Sample(center);
    ASSERT_TRUE(neighbor.has_value());
    EXPECT_TRUE(mapper.IsFeasible(*neighbor));
    EXPECT_FALSE(*neighbor == center);
    const int ged = GraphEditDistance(*neighbor, center);
    EXPECT_GE(ged, 1);
    EXPECT_LE(ged, kNeighborhoodGed);
    // Walk: occasionally move the center to cover more of the space.
    if (i % 10 == 9) center = *neighbor;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, NeighborSweep,
                         ::testing::Values(Application::kDetection,
                                           Application::kLanguage,
                                           Application::kClassification));

TEST(Neighbors, NeverProposesOomEdges) {
  GraphMapper mapper(&DefaultZoo(), 4);
  NeighborSampler sampler(&mapper, 7);
  ConfigGraph center = BaseGraph(Application::kDetection, 4);
  const auto& family = DefaultZoo().ForApplication(Application::kDetection);
  for (int i = 0; i < 300; ++i) {
    const auto neighbor = sampler.Sample(center);
    ASSERT_TRUE(neighbor.has_value());
    for (int v = 0; v < neighbor->num_variants(); ++v)
      for (mig::SliceType s : mig::kAllSliceTypes)
        if (neighbor->Weight(v, s) > 0) {
          EXPECT_TRUE(perf::PerfModel::Fits(family.Variant(v), s));
        }
    if (i % 20 == 19) center = *neighbor;
  }
}

TEST(Neighbors, DeterministicForSeed) {
  GraphMapper mapper_a(&DefaultZoo(), 4);
  GraphMapper mapper_b(&DefaultZoo(), 4);
  NeighborSampler a(&mapper_a, 5);
  NeighborSampler b(&mapper_b, 5);
  const ConfigGraph center = BaseGraph(Application::kLanguage, 4);
  for (int i = 0; i < 50; ++i) {
    const auto na = a.Sample(center);
    const auto nb = b.Sample(center);
    ASSERT_TRUE(na.has_value() && nb.has_value());
    EXPECT_TRUE(*na == *nb);
  }
}

TEST(ConfigGraph, KeyCollisionsAreRareAcrossNeighborhood) {
  GraphMapper mapper(&DefaultZoo(), 10);
  NeighborSampler sampler(&mapper, 11);
  ConfigGraph center = BaseGraph(Application::kClassification, 10);
  std::set<std::uint64_t> keys;
  std::set<std::string> reprs;
  for (int i = 0; i < 500; ++i) {
    const auto neighbor = sampler.Sample(center);
    ASSERT_TRUE(neighbor.has_value());
    keys.insert(neighbor->Key());
    reprs.insert(neighbor->ToString(DefaultZoo()));
    center = *neighbor;
  }
  EXPECT_EQ(keys.size(), reprs.size());
}

}  // namespace
}  // namespace clover::graph
