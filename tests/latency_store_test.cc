// Tests for the lock-free sharded latency store (common/latency_store.h):
// the fold must equal a serial LogHistogramQuantile fed the same samples
// bit for bit at any worker count, means must be exact (integer fixed
// point), and reads must be const and race-safe against live writers
// (the ASan/UBSan job runs this file to hold the store to that).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/latency_store.h"
#include "common/quantile.h"
#include "common/rng.h"

namespace clover {
namespace {

// A deterministic latency multiset spanning the histogram's range, heavy
// around realistic service times.
std::vector<double> SampleSet(std::size_t n, std::uint64_t seed) {
  RngStream rng(seed, "latency-store-test");
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double decade = std::floor(rng.NextDouble() * 5.0) - 1.0;  // [-1,3]
    samples.push_back(rng.NextDouble() * 9.0 * std::pow(10.0, decade) +
                      std::pow(10.0, decade));
  }
  return samples;
}

// Fold-vs-serial bit identity, checked across the whole quantile range.
void ExpectFoldEqualsSerial(const ShardedLatencyStore& store,
                            const std::vector<double>& samples) {
  LogHistogramQuantile serial;
  for (const double sample : samples) serial.Add(sample);
  const LogHistogramQuantile folded = store.FoldHistogram();
  ASSERT_EQ(folded.count(), serial.count());
  for (double q = 0.01; q < 1.0; q += 0.01)
    ASSERT_EQ(folded.Quantile(q), serial.Quantile(q)) << "at q=" << q;
  ASSERT_EQ(folded.Quantile(0.999), serial.Quantile(0.999));
}

void RunConcurrentWriters(std::size_t num_threads) {
  const std::vector<double> samples = SampleSet(40000, 7);
  ShardedLatencyStore store(num_threads);
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < num_threads; ++t) {
    writers.emplace_back([&, t] {
      // Round-robin partition: thread t records samples t, t+T, t+2T, ...
      for (std::size_t i = t; i < samples.size(); i += num_threads)
        store.Record(t, samples[i], 80.0);
    });
  }
  for (std::thread& writer : writers) writer.join();
  ExpectFoldEqualsSerial(store, samples);
}

TEST(LatencyStore, FoldMatchesSerialOneThread) { RunConcurrentWriters(1); }
TEST(LatencyStore, FoldMatchesSerialTwoThreads) { RunConcurrentWriters(2); }
TEST(LatencyStore, FoldMatchesSerialEightThreads) { RunConcurrentWriters(8); }

TEST(LatencyStore, TotalsAreExactIntegerSums) {
  // Latencies quantized to whole microseconds and accuracies to ppm are
  // representable exactly in the fixed-point sums, so the folded means are
  // exact rational arithmetic — no float-accumulation drift, whatever the
  // recording order.
  ShardedLatencyStore store(4);
  std::uint64_t ns_sum = 0;
  std::uint64_t ppm_sum = 0;
  constexpr std::size_t kN = 10000;
  for (std::size_t i = 0; i < kN; ++i) {
    const double latency_ms = 0.001 * static_cast<double>(i % 977);
    const double accuracy = 0.000001 * static_cast<double>((i * 37) % 100000);
    store.Record(i % 4, latency_ms, accuracy);
    ns_sum += static_cast<std::uint64_t>(latency_ms * 1e6 + 0.5);
    ppm_sum += static_cast<std::uint64_t>(accuracy * 1e6 + 0.5);
  }
  const ShardedLatencyStore::Totals totals = store.FoldTotals();
  EXPECT_EQ(totals.count, kN);
  EXPECT_DOUBLE_EQ(totals.mean_latency_ms,
                   static_cast<double>(ns_sum) / 1e6 / double(kN));
  EXPECT_DOUBLE_EQ(totals.mean_accuracy,
                   static_cast<double>(ppm_sum) / 1e6 / double(kN));
}

TEST(LatencyStore, ReadsAreConstAndSafeAgainstLiveWriters) {
  // Fold-on-read through a const reference while writers hammer the
  // shards: every intermediate fold sees word-atomic counters (no torn
  // values — the sanitizer job verifies there is no data race), and the
  // final fold is exact once writers joined.
  ShardedLatencyStore store(4);
  const ShardedLatencyStore& const_store = store;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i)
        store.Record(t, 10.0 + double(i % 100), 80.0);
    });
  }
  std::uint64_t last = 0;
  while (!stop.load()) {
    const std::uint64_t count = const_store.TotalCount();
    EXPECT_GE(count, last);  // counts only grow
    EXPECT_LE(count, 80000u);
    last = count;
    const LogHistogramQuantile mid = const_store.FoldHistogram();
    EXPECT_LE(mid.count(), 80000u);
    if (count == 80000u) stop.store(true);
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(const_store.TotalCount(), 80000u);
  EXPECT_EQ(const_store.FoldTotals().count, 80000u);
}

TEST(LatencyStore, ShardIndexWrapsAndResetZeroes) {
  ShardedLatencyStore store(2);
  store.Record(0, 1.0, 50.0);
  store.Record(5, 2.0, 50.0);  // 5 mod 2 = shard 1
  EXPECT_EQ(store.TotalCount(), 2u);
  store.Reset();
  EXPECT_EQ(store.TotalCount(), 0u);
  EXPECT_EQ(store.FoldHistogram().count(), 0u);
  EXPECT_DOUBLE_EQ(store.FoldTotals().mean_latency_ms, 0.0);
}

TEST(LatencyStore, NonPositiveSamplesClampToMinimumBin) {
  ShardedLatencyStore store(1);
  store.Record(0, 0.0, 0.0);
  store.Record(0, -5.0, -1.0);
  LogHistogramQuantile serial;
  serial.Add(0.0);
  serial.Add(-5.0);
  const LogHistogramQuantile folded = store.FoldHistogram();
  EXPECT_EQ(folded.count(), 2u);
  EXPECT_EQ(folded.Quantile(0.5), serial.Quantile(0.5));
  // Negative fixed-point sums clamp at zero rather than wrapping.
  EXPECT_DOUBLE_EQ(store.FoldTotals().mean_latency_ms, 0.0);
}

TEST(LatencyStore, BinGeometryRoundTrips) {
  // The store writes bins via LogHistogramQuantile::BinIndex and folds via
  // BinRepresentative; the histogram's serial Add must agree with that
  // round trip on every bin, or fold-vs-serial identity breaks.
  for (std::size_t bin = 0; bin < LogHistogramQuantile::kNumBins; ++bin) {
    const double representative = LogHistogramQuantile::BinRepresentative(bin);
    EXPECT_EQ(LogHistogramQuantile::BinIndex(representative), bin)
        << "bin " << bin << " repr " << representative;
  }
}

}  // namespace
}  // namespace clover
