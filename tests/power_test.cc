// Tests for the power model and the busy-time energy meter.
#include <gtest/gtest.h>

#include "common/check.h"
#include "models/zoo.h"
#include "perf/calibration.h"
#include "power/energy_meter.h"
#include "power/power_model.h"

namespace clover::power {
namespace {

using models::Application;
using models::DefaultZoo;

TEST(PowerModel, StaticIncludesGpuAndHostIdle) {
  EXPECT_DOUBLE_EQ(PowerModel::StaticWattsPerGpu(),
                   perf::kGpuIdleWatts + perf::kHostIdleWattsPerGpu);
}

TEST(PowerModel, DynamicScalesWithSliceWidth) {
  const auto& family = DefaultZoo().ForApplication(Application::kLanguage);
  const auto& variant = family.Largest();  // width 6: saturates everything
  double previous = 0.0;
  for (mig::SliceType slice :
       {mig::SliceType::k3g, mig::SliceType::k4g, mig::SliceType::k7g}) {
    const double watts = PowerModel::DynamicWatts(variant, slice);
    EXPECT_GT(watts, previous);
    previous = watts;
  }
}

TEST(PowerModel, SmallModelWastesBigSlicePower) {
  // A small model on a 7g slice draws less dynamic power than a saturating
  // one (lower occupancy) but still pays the slice-wide active-power floor;
  // the energy *per request* there is far worse than on a 1g slice because
  // latency barely improves while power is ~width x higher — the core of
  // paper Opportunity 2.
  const auto& family =
      DefaultZoo().ForApplication(Application::kClassification);
  const auto& b1 = family.Smallest();  // width 0.9
  const auto& b7 = family.Largest();   // width 5.5
  const double b1_on_7g = PowerModel::DynamicWatts(b1, mig::SliceType::k7g);
  const double b7_on_7g = PowerModel::DynamicWatts(b7, mig::SliceType::k7g);
  EXPECT_LT(b1_on_7g, b7_on_7g);
  // The active floor keeps even the tiny model's draw substantial.
  EXPECT_GT(b1_on_7g,
            perf::kGpuMaxDynamicWatts * perf::kActivePowerFloor * 0.9);
  EXPECT_GT(b1_on_7g, PowerModel::DynamicWatts(b1, mig::SliceType::k1g));
}

TEST(PowerModel, FullGpuBusyPowerIsRealistic) {
  // A saturating model on the full GPU: 30 + 345 + host share — in the
  // 400-460 W envelope of an A100 node share.
  const auto& family = DefaultZoo().ForApplication(Application::kDetection);
  const double watts =
      PowerModel::StaticWattsPerGpu() +
      PowerModel::DynamicWatts(family.Largest(), mig::SliceType::k7g);
  EXPECT_GT(watts, 350.0);
  EXPECT_LT(watts, 500.0);
}

TEST(EnergyMeter, StaticOnlyWhenIdle) {
  EnergyMeter meter(4);
  const double joules = meter.DrainWindowJoules(100.0);
  EXPECT_DOUBLE_EQ(joules, PowerModel::StaticWattsPerGpu() * 4 * 100.0);
}

TEST(EnergyMeter, BusyEnergyAccumulatesAndResets) {
  EnergyMeter meter(1);
  meter.AddBusy(10.0, 200.0);  // 2000 J dynamic
  const double first = meter.DrainWindowJoules(60.0);
  EXPECT_DOUBLE_EQ(first, PowerModel::StaticWattsPerGpu() * 60.0 + 2000.0);
  // Second window has no pending busy energy.
  const double second = meter.DrainWindowJoules(60.0);
  EXPECT_DOUBLE_EQ(second, PowerModel::StaticWattsPerGpu() * 60.0);
  EXPECT_DOUBLE_EQ(meter.total_joules(), first + second);
}

TEST(EnergyMeter, RejectsNegativeInputs) {
  EnergyMeter meter(1);
  EXPECT_THROW(meter.DrainWindowJoules(-1.0), CheckError);
  EXPECT_THROW(EnergyMeter(0), CheckError);
}

}  // namespace
}  // namespace clover::power
