// Fig. 15: reduced GPU provisioning — p95 tail latency (normalized to the
// 10-GPU BASE reference) when the cluster shrinks to 1/2.5x (4 GPUs) and
// 1/5x (2 GPUs) of the paper's testbed, for BASE vs CLOVER. The arrival
// rate stays sized for the full 10-GPU BASE deployment, so BASE overloads
// while Clover's partitioning + mixed-quality serving keeps the SLA.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  // Overloaded BASE queues grow without bound; keep these runs short.
  const double hours = std::min(flags.hours, 2.0);
  bench::PrintBanner("Fig. 15 — reduced GPU provisioning (p95 norm to "
                     "10-GPU BASE)",
                     flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  const std::vector<std::pair<const char*, int>> provisionings = {
      {"1/1x (10 GPUs)", 10}, {"1/2.5x (4 GPUs)", 4}, {"1/5x (2 GPUs)", 2}};

  for (models::Application app :
       {models::Application::kDetection, models::Application::kLanguage,
        models::Application::kClassification}) {
    std::vector<core::ExperimentConfig> configs;
    for (const auto& [label, gpus] : provisionings) {
      (void)label;
      for (core::Scheme scheme :
           {core::Scheme::kBase, core::Scheme::kClover}) {
        core::ExperimentConfig config;
        config.app = app;
        config.scheme = scheme;
        config.trace = &trace;
        config.duration_hours = hours;
        config.num_gpus = gpus;
        config.sizing_gpus = 10;  // rate stays sized for the full testbed
        config.seed = flags.seed;
        configs.push_back(config);
      }
    }
    const auto reports = bench::RunAll(configs);

    // Steady-state p95: the median of per-window p95 over the second half
    // of the run. Clover has to discover the right configuration for the
    // shrunken fleet first (its initial BASE deployment is overloaded); the
    // paper's bars likewise report the operating regime, not the cold-start
    // transient. For an overloaded BASE the backlog keeps growing, so this
    // statistic still diverges.
    auto steady_p95 = [](const core::RunReport& report) {
      std::vector<double> tail;
      for (std::size_t w = report.windows.size() / 2;
           w < report.windows.size(); ++w)
        tail.push_back(report.windows[w].p95_ms);
      std::sort(tail.begin(), tail.end());
      return tail.empty() ? 0.0 : tail[tail.size() / 2];
    };
    const double reference = steady_p95(reports[0]);  // 10-GPU BASE

    std::cout << models::ApplicationName(app) << ":\n";
    TextTable table({"provisioning", "BASE p95 (norm)", "CLOVER p95 (norm)"});
    auto norm = [&](const core::RunReport& report) {
      const double n = steady_p95(report) / reference;
      return n > 3.0 ? std::string("> 3") : TextTable::Num(n, 2);
    };
    for (std::size_t p = 0; p < provisionings.size(); ++p)
      table.AddRow({provisionings[p].first, norm(reports[2 * p]),
                    norm(reports[2 * p + 1])});
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout << "paper: BASE needs all 10 GPUs (norm > 1, exploding at 4/2); "
               "CLOVER meets the SLA target even with 2 GPUs — implicitly "
               "saving embodied carbon.\n";
  return 0;
}
