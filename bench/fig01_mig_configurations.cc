// Fig. 1: the 19 MIG configurations of an A100 and the five slice types.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "mig/mig_config.h"

int main(int argc, char** argv) {
  using namespace clover;
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 1 — MIG slice types and the 19 configurations",
                     flags);

  TextTable slice_table({"slice", "compute slots", "memory slices", "GB"});
  for (mig::SliceType type : mig::kAllSliceTypes)
    slice_table.AddRow({std::string(mig::Name(type)),
                        std::to_string(mig::ComputeSlots(type)),
                        std::to_string(mig::MemorySlices(type)),
                        TextTable::Num(mig::MemoryGb(type), 0)});
  slice_table.Print(std::cout);
  std::cout << '\n';

  TextTable layout_table(
      {"config", "layout", "slices", "compute", "memory"});
  for (const mig::MigLayout& layout : mig::MigConfigTable::Get().layouts()) {
    const mig::SliceCounts counts = layout.Counts();
    layout_table.AddRow({std::to_string(layout.id), layout.ToString(),
                         std::to_string(layout.NumSlices()),
                         std::to_string(mig::TotalComputeSlots(counts)),
                         std::to_string(mig::TotalMemorySlices(counts))});
  }
  layout_table.Print(std::cout);
  std::cout << "\nanchors: #1 full GPU, #3 {4g,2g,1g}, #10 {1g,1g,2g,3g}, "
               "#19 seven 1g (paper Fig. 1 / Sec. 2).\n";
  return 0;
}
