// bench_runner: named end-to-end performance suites with machine-readable
// output — the perf baseline every PR measures itself against.
//
//   bench_runner --suite smoke            fast suite (CI; a few seconds)
//   bench_runner --suite full             paper-scale suite (minutes)
//   flags: --threads N (default 4) --seed S --out DIR (default ".")
//
// Each suite emits <out>/BENCH_<suite>.json (clover-bench-v1, see
// bench/timing.h for the schema; scripts/validate_bench_json.py validates
// it) and prints the same numbers as a human table.
//
// Scenarios:
//   sim_hot_path     raw discrete-event simulator throughput (events/sec,
//                    p50/p99 simulated latency) on a BASE cluster
//   sharded_sim      ShardedClusterSim (sim/sharded_sim.h): independent
//                    lanes over the thread pool with the epoch-barrier
//                    merge; reports merged events/sec and enforces the
//                    shard determinism contract (--threads vs 1 thread
//                    must be bit-identical) via exit status
//   opt_screened     screen-then-simulate random search: the analytic
//                    surrogate (opt/surrogate.h) ranks a 16x oversampled
//                    pool, only the top slice is simulated; candidates
//                    counts considered configurations (simulated +
//                    screened) and the notes give the throughput ratio
//                    against the unscreened rate
//   opt_random       random search over ReplayEvaluator batches, 1 thread
//                    vs --threads; reports candidates/sec, speedup, and
//                    whether the two runs were bit-identical
//   opt_annealing    same comparison for the graph-space annealer
//   e2e_step         full trace -> controller -> simulator pipeline on the
//                    step trace (BASE + CLOVER), executed through the
//                    campaign engine (exp/runner.h) — the same code path
//                    `clover_campaign run` shards, so the bench and
//                    campaign pipelines cannot drift
//   fault_recovery   CLOVER riding out an injected GPU fail-stop plus a
//                    flash crowd (sim/fault_injector.h); reports events/sec
//                    and the completion ratio, and replays the identical
//                    schedule to enforce the fault engine's bit-identity
//                    contract via exit status
//   fleet_routing    geo-distributed fleet (us-west + ap-northeast, anti-
//                    correlated carbon): CLOVER per region under the
//                    carbon-greedy global router vs the static split;
//                    reports the spatial gCO2 saving and checks the fleet
//                    bit-identity contract (--threads vs 1 thread)
//   meanfield_fleet  the fluid fidelity tier at planet scale: the four
//                    region presets tiled into a replica fleet (100
//                    regions smoke / 1000 full) under carbon-greedy
//                    routing via fleet::RunFleetMeanField; reports
//                    regions/sec in the notes and replays a twin to
//                    enforce the tier's bit-identity contract
//   live_serving     the epoll serving front-end end to end: replays the
//                    trace-derived schedule over loopback TCP in flood
//                    mode (core/live_service.h); reports wire req/s and
//                    live virtual p50/p99, and enforces the worker-count
//                    invariance contract (--threads workers vs 1 must
//                    produce a bit-identical twin report and identical
//                    live latencies) via exit status
//   obs_overhead     the observability layer's own cost: the sharded-sim
//                    workload with instrumentation runtime-disabled vs
//                    enabled-but-idle (recording, nobody reading); notes
//                    give the throughput ratio, and the two summaries
//                    must be bit-identical (instrumentation never
//                    perturbs results)
//
// The whole suite runs with observability *enabled* (src/obs), so every
// bit-identity twin above doubles as proof that instrumentation does not
// perturb results. The suite dumps TRACE_<suite>.json (Chrome trace) and
// METRICS_<suite>.json next to the bench JSON, and a failed determinism
// gate writes a triage/<bench-scenario>/ bundle (obs/triage.h) before
// exiting nonzero.
//
// Exit status is nonzero when any parallel run failed the bit-identity
// check, so CI catches determinism regressions without a threshold.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/harness.h"
#include "core/live_service.h"
#include "exp/campaign.h"
#include "exp/runner.h"
#include "fleet/fleet_sim.h"
#include "fleet/meanfield_fleet.h"
#include "graph/neighbors.h"
#include "models/zoo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/triage.h"
#include "opt/evaluator.h"
#include "opt/random_search.h"
#include "opt/surrogate.h"
#include "sim/arrivals.h"
#include "sim/sharded_sim.h"
#include "timing.h"

namespace clover::bench {
namespace {

struct RunnerFlags {
  std::string suite = "smoke";
  int threads = 4;
  std::uint64_t seed = 1;
  std::string out_dir = ".";
};

RunnerFlags ParseRunnerFlags(int argc, char** argv) {
  RunnerFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      CLOVER_CHECK_MSG(i + 1 < argc, "missing value for " << arg);
      return argv[++i];
    };
    // Strict unsigned parse: stoull alone would accept trailing garbage
    // ("4x" -> 4) and wrap negatives (-1 -> 2^64-1); reject both with the
    // same diagnostic style the string flags produce.
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      try {
        std::size_t consumed = 0;
        CLOVER_CHECK(!value.empty() && value.front() != '-');
        const std::uint64_t parsed = std::stoull(value, &consumed);
        CLOVER_CHECK(consumed == value.size());
        return parsed;
      } catch (const std::exception&) {
        std::cerr << "bad numeric value '" << value << "' for " << arg
                  << " (see --help)\n";
        std::exit(2);
      }
    };
    if (arg == "--suite") {
      flags.suite = next();
    } else if (arg == "--threads") {
      const std::uint64_t threads = next_u64();
      CLOVER_CHECK_MSG(threads >= 1 && threads <= 1024,
                       "--threads out of range: " << threads);
      flags.threads = static_cast<int>(threads);
    } else if (arg == "--seed") {
      flags.seed = next_u64();
    } else if (arg == "--out") {
      flags.out_dir = next();
    } else if (arg == "--help") {
      std::cout << "flags: --suite smoke|full --threads N --seed S "
                   "--out DIR\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  CLOVER_CHECK_MSG(flags.suite == "smoke" || flags.suite == "full",
                   "unknown suite " << flags.suite);
  return flags;
}

// Per-suite scale knobs.
struct SuiteScale {
  int gpus = 4;
  double sim_seconds = 900.0;       // sim_hot_path span
  int candidates = 64;              // optimizer evaluations per search
  int random_batch = 16;            // random-search round size
  int anneal_batch = 8;             // annealer speculative round size
  double e2e_hours = 2.0;           // e2e_step span
  int fleet_gpus = 2;               // per fleet region
  double fleet_hours = 2.0;         // fleet_routing span
  int shard_lanes = 8;              // sharded_sim lane count
  double shard_seconds = 600.0;     // sharded_sim span
  int screen_factor = 16;           // opt_screened oversampling factor
  double live_hours = 0.25;         // live_serving span (virtual)
  int mf_replicas = 25;             // meanfield_fleet: 4 presets tiled
};

SuiteScale ScaleFor(const std::string& suite) {
  SuiteScale scale;
  if (suite == "full") {
    scale.gpus = 10;
    scale.sim_seconds = 7200.0;
    scale.candidates = 256;
    scale.e2e_hours = 12.0;
    scale.fleet_gpus = 5;
    scale.fleet_hours = 12.0;
    scale.shard_lanes = 16;
    scale.shard_seconds = 3600.0;
    scale.live_hours = 1.0;
    scale.mf_replicas = 250;  // the ISSUE's 1000-region acceptance cell
  }
  return scale;
}

carbon::CarbonTrace FlatBenchTrace() {
  return carbon::CarbonTrace("bench-flat", 3600.0,
                             std::vector<double>(48, 250.0));
}

// ---------------------------------------------------------------------------
// sim_hot_path: raw simulator throughput.
// ---------------------------------------------------------------------------
ScenarioTiming RunSimHotPath(const RunnerFlags& flags,
                             const SuiteScale& scale,
                             const carbon::CarbonTrace& trace) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::Application app = models::Application::kClassification;
  serving::Deployment base = serving::MakeBase(app, scale.gpus);
  sim::SimOptions options;
  options.arrival_rate_qps = sim::SizeArrivalRate(zoo, app, scale.gpus);
  options.seed = flags.seed;
  sim::ClusterSim sim(base, zoo, &trace, options);

  WallTimer timer;
  sim.AdvanceTo(scale.sim_seconds);
  const double wall = timer.Seconds();

  ScenarioTiming timing;
  timing.name = "sim_hot_path";
  timing.wall_seconds = wall;
  timing.events = sim.total_arrivals() + sim.total_completions();
  timing.events_per_sec =
      wall > 0.0 ? static_cast<double>(timing.events) / wall : 0.0;
  timing.sim_p50_ms = sim.OverallQuantileMs(0.50);
  timing.sim_p99_ms = sim.OverallQuantileMs(0.99);
  timing.notes = std::to_string(scale.gpus) + " GPUs, " +
                 std::to_string(static_cast<int>(scale.sim_seconds)) +
                 " simulated seconds";
  return timing;
}

// ---------------------------------------------------------------------------
// sharded_sim: lane-parallel simulation with the epoch-barrier merge.
// ---------------------------------------------------------------------------
ScenarioTiming RunShardedSim(const RunnerFlags& flags, const SuiteScale& scale,
                             const carbon::CarbonTrace& trace) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::Application app = models::Application::kClassification;
  // Small lanes, many of them: 2 GPUs per lane keeps the per-lane state
  // tiny so the scenario measures the sharding machinery, not one lane.
  const int lane_gpus = 2;
  const serving::Deployment lane = serving::MakeBase(app, lane_gpus);
  sim::ShardedSimOptions options;
  options.num_lanes = scale.shard_lanes;
  options.base.arrival_rate_qps =
      sim::SizeArrivalRate(zoo, app, lane_gpus) * options.num_lanes;
  options.base.seed = flags.seed;

  sim::ShardedClusterSim sharded(lane, zoo, &trace, options);
  ThreadPool pool(flags.threads);
  WallTimer timer;
  sharded.AdvanceTo(scale.shard_seconds, &pool);
  const double wall = timer.Seconds();
  const sim::ShardedSummary summary = sharded.Summary();

  ScenarioTiming timing;
  timing.name = "sharded_sim";
  timing.wall_seconds = wall;
  timing.events = summary.sim_events;
  timing.events_per_sec =
      wall > 0.0 ? static_cast<double>(timing.events) / wall : 0.0;
  timing.sim_p50_ms = summary.p50_ms;
  timing.sim_p99_ms = summary.p99_ms;
  // The shard determinism contract: the thread count decides which slot
  // advances which lane, never what any lane computes. A serial twin must
  // reproduce the parallel run bit for bit (vacuous at --threads 1).
  if (flags.threads > 1) {
    sim::ShardedClusterSim twin(lane, zoo, &trace, options);
    twin.AdvanceTo(scale.shard_seconds, nullptr);
    timing.deterministic =
        sim::ShardedSummariesBitIdentical(summary, twin.Summary());
  }
  timing.notes = std::to_string(options.num_lanes) + " lanes x " +
                 std::to_string(lane_gpus) + " GPUs, " +
                 std::to_string(static_cast<int>(scale.shard_seconds)) +
                 " simulated seconds, " + std::to_string(flags.threads) +
                 " threads";
  return timing;
}

// ---------------------------------------------------------------------------
// opt_random / opt_annealing: parallel candidate evaluation.
// ---------------------------------------------------------------------------

// Shared context for the optimizer scenarios: a BASE-calibrated objective
// and replica options for the pure replay evaluator.
struct OptContext {
  const models::ModelZoo* zoo = nullptr;
  const carbon::CarbonTrace* trace = nullptr;
  int gpus = 0;
  opt::ReplayEvaluator::Options replay;
  opt::ObjectiveParams params;
  double ci = 250.0;
  graph::ConfigGraph start;

  OptContext() : start(models::Application::kClassification, 1) {}
};

OptContext MakeOptContext(const RunnerFlags& flags, const SuiteScale& scale,
                          const carbon::CarbonTrace& trace) {
  OptContext context;
  context.zoo = &models::DefaultZoo();
  context.trace = &trace;
  context.gpus = scale.gpus;
  const models::Application app = models::Application::kClassification;

  context.replay.arrival_rate_qps =
      sim::SizeArrivalRate(*context.zoo, app, scale.gpus);
  context.replay.settle_s = 2.0;
  context.replay.measure_window_s = 10.0;
  context.replay.seed = flags.seed;

  const serving::Deployment base = serving::MakeBase(app, scale.gpus);
  context.start = graph::ConfigGraph::FromDeployment(base, *context.zoo);
  context.replay = opt::ReplayEvaluator::CalibrateAgainst(
      context.zoo, context.trace, scale.gpus, context.start, context.replay,
      context.ci, &context.params);
  return context;
}

std::vector<std::unique_ptr<opt::Evaluator>> MakeReplicas(
    const OptContext& context, int count) {
  std::vector<std::unique_ptr<opt::Evaluator>> replicas;
  replicas.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    replicas.push_back(std::make_unique<opt::ReplayEvaluator>(
        context.zoo, context.trace, context.gpus, context.replay));
  return replicas;
}

struct SearchRun {
  opt::SearchResult result;
  double wall_seconds = 0.0;
};

SearchRun RunRandomOnce(const OptContext& context, const RunnerFlags& flags,
                        const SuiteScale& scale, int threads) {
  ThreadPool pool(threads);
  opt::ParallelBatchEvaluator batch(&pool, MakeReplicas(context, threads));
  // The serial-fallback evaluator is unused once a batch executor is set,
  // but the constructor requires one.
  opt::ReplayEvaluator fallback(context.zoo, context.trace, context.gpus,
                                context.replay);
  graph::GraphMapper mapper(context.zoo, context.gpus);
  opt::RandomSearch::Options options;
  options.max_evaluations = scale.candidates;
  options.no_improve_limit = 1 << 30;  // run the full candidate budget
  options.time_budget_s = 1e12;
  options.batch_size = scale.random_batch;
  opt::RandomSearch search(&fallback, &mapper, options, flags.seed);
  search.SetBatchEvaluator(&batch);

  SearchRun run;
  WallTimer timer;
  run.result = search.Run(context.start, context.params, context.ci);
  run.wall_seconds = timer.Seconds();
  return run;
}

SearchRun RunAnnealOnce(const OptContext& context, const RunnerFlags& flags,
                        const SuiteScale& scale, int threads) {
  ThreadPool pool(threads);
  opt::ParallelBatchEvaluator batch(&pool, MakeReplicas(context, threads));
  opt::ReplayEvaluator fallback(context.zoo, context.trace, context.gpus,
                                context.replay);
  graph::GraphMapper mapper(context.zoo, context.gpus);
  graph::NeighborSampler sampler(&mapper, flags.seed);
  opt::SimulatedAnnealing::Options options;
  options.max_evaluations = scale.candidates;
  options.no_improve_limit = 1 << 30;
  options.time_budget_s = 1e12;
  options.batch_size = scale.anneal_batch;
  opt::SimulatedAnnealing annealer(&fallback, &sampler, options, flags.seed);
  annealer.SetBatchEvaluator(&batch);

  SearchRun run;
  WallTimer timer;
  run.result = annealer.Run(context.start, context.params, context.ci);
  run.wall_seconds = timer.Seconds();
  return run;
}

// Random search with the analytic fast tier installed: each round draws
// screen_factor x batch_size candidates, the surrogate ranks them, and only
// the top batch-size slice pays for a replay evaluation.
SearchRun RunScreenedOnce(const OptContext& context, const RunnerFlags& flags,
                          const SuiteScale& scale, int threads) {
  ThreadPool pool(threads);
  opt::ParallelBatchEvaluator batch(&pool, MakeReplicas(context, threads));
  opt::ReplayEvaluator fallback(context.zoo, context.trace, context.gpus,
                                context.replay);
  graph::GraphMapper mapper(context.zoo, context.gpus);
  opt::SurrogateEvaluator surrogate(
      context.zoo, context.gpus,
      opt::SurrogateEvaluator::FromReplay(context.replay,
                                          sim::ServiceModel::kJittered,
                                          perf::kServiceJitterSigma));
  opt::RandomSearch::Options options;
  options.max_evaluations = scale.candidates;
  options.no_improve_limit = 1 << 30;
  options.time_budget_s = 1e12;
  options.batch_size = scale.random_batch;
  options.screen_factor = scale.screen_factor;
  opt::RandomSearch search(&fallback, &mapper, options, flags.seed);
  search.SetBatchEvaluator(&batch);
  search.SetSurrogate(&surrogate);

  SearchRun run;
  WallTimer timer;
  run.result = search.Run(context.start, context.params, context.ci);
  run.wall_seconds = timer.Seconds();
  return run;
}

// Screen-then-simulate throughput: candidates counts every configuration
// the search *considered* (simulated + surrogate-screened) — the fidelity
// tier's whole point is that considering a candidate no longer requires
// simulating it. The unscreened run with the same thread count anchors the
// throughput ratio in the notes.
ScenarioTiming RunOptScreened(const OptContext& context,
                              const RunnerFlags& flags,
                              const SuiteScale& scale) {
  const SearchRun baseline = RunRandomOnce(context, flags, scale,
                                           flags.threads);
  const SearchRun serial = RunScreenedOnce(context, flags, scale, 1);
  const SearchRun parallel = RunScreenedOnce(context, flags, scale,
                                             flags.threads);

  ScenarioTiming timing;
  timing.name = "opt_screened";
  timing.wall_seconds = parallel.wall_seconds;
  timing.candidates = parallel.result.evaluations.size() +
                      static_cast<std::uint64_t>(parallel.result.screened);
  timing.candidates_per_sec =
      parallel.wall_seconds > 0.0
          ? static_cast<double>(timing.candidates) / parallel.wall_seconds
          : 0.0;
  // Screening is serial and the surrogate is pure, so the usual contract
  // holds: thread count never changes the result.
  timing.deterministic =
      opt::SearchResultsBitIdentical(serial.result, parallel.result);
  const double baseline_rate =
      baseline.wall_seconds > 0.0
          ? static_cast<double>(baseline.result.evaluations.size()) /
                baseline.wall_seconds
          : 0.0;
  const double ratio = baseline_rate > 0.0
                           ? timing.candidates_per_sec / baseline_rate
                           : 0.0;
  timing.notes =
      std::to_string(parallel.result.evaluations.size()) + " simulated + " +
      std::to_string(parallel.result.screened) + " screened (x" +
      std::to_string(scale.screen_factor) + " pool), " +
      TextTable::Num(ratio, 1) + "x the unscreened rate (" +
      TextTable::Num(baseline_rate, 1) + " cand/s)";
  return timing;
}

template <typename RunOnce>
ScenarioTiming CompareSerialParallel(const std::string& name,
                                     const RunnerFlags& flags,
                                     RunOnce&& run_once) {
  const SearchRun serial = run_once(1);
  const SearchRun parallel = run_once(flags.threads);

  ScenarioTiming timing;
  timing.name = name;
  timing.wall_seconds = parallel.wall_seconds;
  timing.candidates = parallel.result.evaluations.size();
  timing.candidates_per_sec =
      parallel.wall_seconds > 0.0
          ? static_cast<double>(timing.candidates) / parallel.wall_seconds
          : 0.0;
  const double serial_rate =
      serial.wall_seconds > 0.0
          ? static_cast<double>(serial.result.evaluations.size()) /
                serial.wall_seconds
          : 0.0;
  timing.speedup_vs_serial =
      serial_rate > 0.0 ? timing.candidates_per_sec / serial_rate : 0.0;
  // The shared contract definition (opt/annealing.h), the same predicate
  // the unit tests assert.
  timing.deterministic =
      opt::SearchResultsBitIdentical(serial.result, parallel.result);
  timing.notes = std::to_string(timing.candidates) + " candidates, " +
                 std::to_string(flags.threads) + " threads vs 1 (" +
                 TextTable::Num(serial_rate, 1) + " cand/s serial)";
  return timing;
}

// ---------------------------------------------------------------------------
// fault_recovery: the verification subsystem's fault engine end to end.
// ---------------------------------------------------------------------------
ScenarioTiming RunFaultRecovery(const RunnerFlags& flags,
                                const SuiteScale& scale,
                                const carbon::CarbonTrace& trace) {
  const int gpus = std::min(scale.gpus, 4);
  core::ExperimentConfig config;
  config.app = models::Application::kClassification;
  config.scheme = core::Scheme::kClover;
  config.trace = &trace;
  config.duration_hours = scale.e2e_hours;
  config.num_gpus = gpus;
  // Sized one GPU short so the mid-run fail-stop lands at the paper's 75%
  // calibration point instead of tipping the cluster over.
  config.sizing_gpus = gpus - 1;
  config.seed = flags.seed;
  const double third = HoursToSeconds(config.duration_hours) / 3.0;
  config.faults.gpu_faults.push_back({/*gpu_index=*/0, third, 1.5 * third});
  config.faults.flash_crowds.push_back({2.0 * third, 2.5 * third, 1.8});

  core::ExperimentHarness harness(&models::DefaultZoo());
  WallTimer timer;
  const core::RunReport run = harness.Run(config);
  const double wall = timer.Seconds();
  // Identical schedule, identical seed: the fault engine must replay
  // bit-identically (the determinism gate CI enforces via exit status).
  const core::RunReport twin = harness.Run(config);

  ScenarioTiming timing;
  timing.name = "fault_recovery";
  timing.wall_seconds = wall;
  timing.events = run.sim_events;
  timing.events_per_sec =
      wall > 0.0 ? static_cast<double>(timing.events) / wall : 0.0;
  timing.sim_p50_ms = run.overall_p50_ms;
  timing.sim_p99_ms = run.overall_p99_ms;
  timing.deterministic = core::RunReportsBitIdentical(run, twin);
  const double completion_pct =
      run.arrivals ? 100.0 * static_cast<double>(run.completions) /
                         static_cast<double>(run.arrivals)
                   : 0.0;
  timing.notes = std::to_string(gpus) +
                 " GPUs, 1 fail-stop + 1.8x flash crowd over " +
                 TextTable::Num(config.duration_hours, 1) + " h; served " +
                 TextTable::Num(completion_pct, 2) + "% of arrivals";
  return timing;
}

// ---------------------------------------------------------------------------
// fleet_routing: spatial carbon arbitrage across anti-correlated regions.
// ---------------------------------------------------------------------------
fleet::FleetConfig MakeFleetConfig(const RunnerFlags& flags,
                                   const SuiteScale& scale,
                                   fleet::RouterPolicy policy, int threads) {
  fleet::FleetConfig config;
  config.app = models::Application::kClassification;
  // us-west and ap-northeast share the CISO March profile 12 h apart, so
  // their solar dips are anti-correlated — the setting where the spatial
  // lever matters most (and the same presets the fleet tests use).
  config.regions =
      fleet::RegionsFromPresets({"us-west", "ap-northeast"}, scale.fleet_gpus);
  config.duration_hours = scale.fleet_hours;
  config.scheme = core::Scheme::kClover;
  config.router = policy;
  config.seed = flags.seed;
  config.threads = threads;
  return config;
}

ScenarioTiming RunFleetRouting(const RunnerFlags& flags,
                               const SuiteScale& scale) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  WallTimer timer;
  const fleet::FleetReport greedy = fleet::RunFleet(
      MakeFleetConfig(flags, scale, fleet::RouterPolicy::kCarbonGreedy,
                      flags.threads),
      zoo);
  const double wall = timer.Seconds();
  const fleet::FleetReport static_split = fleet::RunFleet(
      MakeFleetConfig(flags, scale, fleet::RouterPolicy::kStatic,
                      flags.threads),
      zoo);

  ScenarioTiming timing;
  timing.name = "fleet_routing";
  timing.wall_seconds = wall;
  timing.events = greedy.fleet.sim_events;
  timing.events_per_sec =
      wall > 0.0 ? static_cast<double>(timing.events) / wall : 0.0;
  timing.sim_p50_ms = greedy.fleet.overall_p50_ms;
  timing.sim_p99_ms = greedy.fleet.overall_p99_ms;
  // The fleet determinism contract: thread count never changes results.
  // At --threads 1 the twin would be configured identically, so the
  // comparison is vacuous and the extra simulation is skipped.
  if (flags.threads > 1) {
    const fleet::FleetReport greedy_serial = fleet::RunFleet(
        MakeFleetConfig(flags, scale, fleet::RouterPolicy::kCarbonGreedy, 1),
        zoo);
    timing.deterministic =
        fleet::FleetReportsBitIdentical(greedy, greedy_serial);
  }
  const double save_pct =
      greedy.fleet.CarbonSavePctVs(static_split.fleet);
  timing.notes = std::to_string(greedy.regions.size()) +
                 " regions (us-west + ap-northeast), carbon-greedy vs "
                 "static: " +
                 TextTable::Num(save_pct, 1) + "% gCO2, SLO attainment " +
                 TextTable::Num(greedy.slo_attainment * 100.0, 1) + "% vs " +
                 TextTable::Num(static_split.slo_attainment * 100.0, 1) +
                 "%";
  return timing;
}

// ---------------------------------------------------------------------------
// meanfield_fleet: the fluid fidelity tier at planet scale.
// ---------------------------------------------------------------------------
// Builds the cell through exp::MakeFleetCellConfig — the exact path the
// nightly 1000-region campaign (campaigns/fleet_1000region_toy.json) takes
// — so the bench measures what the campaign pays, replica tiling included.
ScenarioTiming RunMeanFieldFleet(const RunnerFlags& flags,
                                 const SuiteScale& scale) {
  exp::CellSpec cell;
  cell.mode = exp::CampaignMode::kFleet;
  cell.scheme = core::Scheme::kBase;
  cell.app = models::Application::kClassification;
  cell.regions = {"us-west", "us-east", "eu-west", "ap-northeast"};
  cell.router = fleet::RouterPolicy::kCarbonGreedy;
  cell.meanfield = true;
  cell.region_replicas = scale.mf_replicas;
  cell.gpus = scale.fleet_gpus;
  cell.hours = scale.fleet_hours;
  cell.seed = flags.seed;
  const fleet::FleetConfig config = exp::MakeFleetCellConfig(cell);
  const models::ModelZoo& zoo = models::DefaultZoo();

  WallTimer timer;
  const fleet::FleetReport run = fleet::RunFleetMeanField(config, zoo);
  const double wall = timer.Seconds();
  // The fluid tier is RNG-free past trace generation, so a twin run must
  // reproduce the report bit for bit — same gate the unit test pins.
  const fleet::FleetReport twin = fleet::RunFleetMeanField(config, zoo);

  ScenarioTiming timing;
  timing.name = "meanfield_fleet";
  timing.wall_seconds = wall;
  timing.events = run.fleet.sim_events;
  timing.events_per_sec =
      wall > 0.0 ? static_cast<double>(timing.events) / wall : 0.0;
  timing.sim_p50_ms = run.fleet.overall_p50_ms;
  timing.sim_p99_ms = run.fleet.overall_p99_ms;
  timing.deterministic = fleet::FleetReportsBitIdentical(run, twin);
  const double regions_per_sec =
      wall > 0.0 ? static_cast<double>(run.regions.size()) / wall : 0.0;
  timing.notes = std::to_string(run.regions.size()) +
                 " fluid regions (4 presets x " +
                 std::to_string(scale.mf_replicas) + "), carbon-greedy, " +
                 TextTable::Num(scale.fleet_hours, 1) + " h; " +
                 TextTable::Num(regions_per_sec, 1) + " regions/s, served " +
                 std::to_string(run.fleet.completions) + " of " +
                 std::to_string(run.fleet.arrivals);
  return timing;
}

// ---------------------------------------------------------------------------
// live_serving: the epoll front end + replay client over loopback TCP.
// ---------------------------------------------------------------------------
ScenarioTiming RunLiveServing(const RunnerFlags& flags,
                              const SuiteScale& scale,
                              const carbon::CarbonTrace& trace) {
  core::ExperimentConfig config;
  config.app = models::Application::kClassification;
  config.scheme = core::Scheme::kClover;
  config.trace = &trace;
  config.duration_hours = scale.live_hours;
  config.num_gpus = config.sizing_gpus = std::min(scale.gpus, 4);
  config.seed = flags.seed;

  // One harness for both runs: the calibration cache makes the serial twin
  // reuse the flood run's BASE calibration instead of re-simulating it.
  core::ExperimentHarness harness(&models::DefaultZoo());
  auto run_once = [&](std::size_t workers) {
    core::LiveRunOptions options;
    options.worker_threads = workers;
    options.batch_max_requests = 512;  // flood mode: amortize the handoff
    return core::RunLiveExperiment(&harness, &models::DefaultZoo(), config,
                                   options);
  };

  WallTimer timer;
  const core::LiveRunResult run =
      run_once(static_cast<std::size_t>(flags.threads));
  const double wall = timer.Seconds();

  ScenarioTiming timing;
  timing.name = "live_serving";
  timing.wall_seconds = wall;
  timing.events = run.replay.sent;
  // Wire throughput: requests pushed through the socket pair per wall
  // second of replay (excludes calibration/teardown, which `wall` keeps).
  timing.events_per_sec = run.replay.achieved_qps;
  timing.sim_p50_ms = run.stats.p50_virtual_ms;
  timing.sim_p99_ms = run.stats.p99_virtual_ms;
  // The worker-count invariance contract (serving/live_server.h): worker
  // threads only parallelize response encoding, never the virtual-time
  // section, so the twin report must be bit-identical and the live
  // latency distribution exactly equal. all_acked folds the transport
  // into the same gate: every request got exactly one response.
  timing.deterministic = run.replay.all_acked;
  if (flags.threads > 1) {
    const core::LiveRunResult serial = run_once(1);
    timing.deterministic =
        timing.deterministic && serial.replay.all_acked &&
        core::RunReportsBitIdentical(run.twin_report, serial.twin_report) &&
        run.stats.p50_virtual_ms == serial.stats.p50_virtual_ms &&
        run.stats.p99_virtual_ms == serial.stats.p99_virtual_ms &&
        run.stats.completed == serial.stats.completed &&
        run.commits.size() == serial.commits.size();
  }
  const double shed_pct =
      run.replay.sent > 0
          ? 100.0 * static_cast<double>(run.replay.shed()) /
                static_cast<double>(run.replay.sent)
          : 0.0;
  // The SLA is a p95 budget (params.l_tail_ms = BASE's calibrated p95);
  // p99 gets the conventional 2x of the p95 budget.
  const double slo_ms = run.twin_report.params.l_tail_ms;
  const double live_p95_ms = run.replay.ok_latency_virtual_ms.Quantile(0.95);
  const bool slo_ok =
      live_p95_ms <= slo_ms && timing.sim_p99_ms <= 2.0 * slo_ms;
  timing.notes =
      std::to_string(config.num_gpus) + " GPUs, " +
      std::to_string(flags.threads) + " workers vs 1, flood replay over " +
      TextTable::Num(scale.live_hours, 2) + " virtual h; shed " +
      TextTable::Num(shed_pct, 2) + "%, live p95 " +
      TextTable::Num(live_p95_ms, 1) + " ms vs SLO " +
      TextTable::Num(slo_ms, 1) + " ms, p99 " +
      TextTable::Num(timing.sim_p99_ms, 1) + " ms vs " +
      TextTable::Num(2.0 * slo_ms, 1) + " ms (" +
      (slo_ok ? "ok" : "OVER") + ")";
  return timing;
}

// ---------------------------------------------------------------------------
// obs_overhead: what the flight recorder costs when nobody is watching.
// ---------------------------------------------------------------------------
// Runs the sharded-sim workload twice: once with observability runtime-
// disabled (each macro site pays one relaxed load — the closest in-process
// stand-in for a CLOVER_OBS=OFF build) and once enabled-but-idle (counters
// increment, spans record, nothing is dumped). The acceptance budget is
// the enabled run staying within a few percent of the disabled one; the
// ratio lands in the notes column rather than a hard gate because wall
// time on shared CI is noisy. Bit-identity of the two summaries IS gated:
// instrumentation must never perturb simulation results.
ScenarioTiming RunObsOverhead(const RunnerFlags& flags,
                              const SuiteScale& scale,
                              const carbon::CarbonTrace& trace) {
  const models::ModelZoo& zoo = models::DefaultZoo();
  const models::Application app = models::Application::kClassification;
  const int lane_gpus = 2;
  const serving::Deployment lane = serving::MakeBase(app, lane_gpus);
  sim::ShardedSimOptions options;
  options.num_lanes = std::max(scale.shard_lanes / 2, 2);
  options.base.arrival_rate_qps =
      sim::SizeArrivalRate(zoo, app, lane_gpus) * options.num_lanes;
  options.base.seed = flags.seed;
  const double span = scale.shard_seconds / 2.0;

  auto run_once = [&](double seconds) {
    sim::ShardedClusterSim sim(lane, zoo, &trace, options);
    ThreadPool pool(flags.threads);
    WallTimer timer;
    sim.AdvanceTo(seconds, &pool);
    return std::make_pair(sim.Summary(), timer.Seconds());
  };
  // Best-of-3 wall time per mode: at smoke scale a single run is a few
  // milliseconds, where scheduler noise dwarfs the relaxed-atomic cost
  // being measured. The minimum is the run with the least interference.
  auto run_best = [&]() {
    auto best = run_once(span);
    for (int i = 0; i < 2; ++i) {
      const auto rerun = run_once(span);
      if (rerun.second < best.second) best.second = rerun.second;
    }
    return best;
  };

  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(false);
  run_once(span / 4.0);  // warm-up: page in code + pool threads, discard
  const auto [off_summary, off_wall] = run_best();
  obs::SetEnabled(true);
  obs::Tracer::Get().Enable();
  const auto [on_summary, on_wall] = run_best();
  obs::SetEnabled(was_enabled);

  ScenarioTiming timing;
  timing.name = "obs_overhead";
  timing.wall_seconds = on_wall;
  timing.events = on_summary.sim_events;
  timing.events_per_sec =
      on_wall > 0.0 ? static_cast<double>(timing.events) / on_wall : 0.0;
  timing.sim_p50_ms = on_summary.p50_ms;
  timing.sim_p99_ms = on_summary.p99_ms;
  timing.deterministic =
      sim::ShardedSummariesBitIdentical(off_summary, on_summary);
  const double off_rate =
      off_wall > 0.0 ? static_cast<double>(off_summary.sim_events) / off_wall
                     : 0.0;
  const double ratio =
      off_rate > 0.0 ? timing.events_per_sec / off_rate : 0.0;
  const double overhead_pct = ratio > 0.0 ? (1.0 - ratio) * 100.0 : 0.0;
  timing.notes = "enabled-idle vs disabled: " + TextTable::Num(ratio, 3) +
                 "x throughput (" + TextTable::Num(overhead_pct, 1) +
                 "% overhead, budget 3%), " +
                 std::to_string(options.num_lanes) + " lanes x " +
                 std::to_string(lane_gpus) + " GPUs, " +
                 std::to_string(static_cast<int>(span)) +
                 " simulated seconds";
  return timing;
}

}  // namespace
}  // namespace clover::bench

int main(int argc, char** argv) {
  using namespace clover;
  const bench::RunnerFlags flags = bench::ParseRunnerFlags(argc, argv);
  const bench::SuiteScale scale = bench::ScaleFor(flags.suite);
  const carbon::CarbonTrace flat = bench::FlatBenchTrace();

  // The whole suite runs with the flight recorder on: every bit-identity
  // twin below then also proves instrumentation never perturbs results
  // (obs_overhead measures what it costs).
  obs::SetEnabled(true);
  obs::Tracer::Get().Enable();

  std::cout << "==== bench_runner — suite " << flags.suite << " ====\n"
            << flags.threads << " threads | seed " << flags.seed << "\n\n";

  bench::SuiteTiming suite;
  suite.suite = flags.suite;
  suite.threads = flags.threads;
  suite.seed = flags.seed;

  suite.scenarios.push_back(bench::RunSimHotPath(flags, scale, flat));
  suite.scenarios.push_back(bench::RunShardedSim(flags, scale, flat));

  const bench::OptContext context = bench::MakeOptContext(flags, scale, flat);
  suite.scenarios.push_back(bench::CompareSerialParallel(
      "opt_random", flags, [&](int threads) {
        return bench::RunRandomOnce(context, flags, scale, threads);
      }));
  suite.scenarios.push_back(bench::CompareSerialParallel(
      "opt_annealing", flags, [&](int threads) {
        return bench::RunAnnealOnce(context, flags, scale, threads);
      }));
  suite.scenarios.push_back(bench::RunOptScreened(context, flags, scale));

  {
    // BASE + CLOVER on the step trace, executed through the campaign
    // engine — exactly what `clover_campaign run` would do for the same
    // two cells (tests/campaign_test.cc pins the engine's results to the
    // direct harness path, so routing the bench through it costs nothing
    // and keeps the two pipelines from drifting).
    exp::CampaignSpec campaign;
    campaign.name = "bench-e2e-step";
    campaign.threads = flags.threads;
    for (const core::Scheme scheme :
         {core::Scheme::kBase, core::Scheme::kClover}) {
      exp::CellSpec cell;
      cell.scheme = scheme;
      cell.app = models::Application::kClassification;
      cell.trace = "step";
      cell.gpus = std::min(scale.gpus, 4);
      cell.hours = scale.e2e_hours;
      cell.seed = flags.seed;
      campaign.cells.push_back(cell);
    }
    campaign.grid_cells = static_cast<int>(campaign.cells.size());
    exp::CampaignOptions options;
    options.threads = flags.threads;
    options.write_files = false;
    bench::WallTimer timer;
    const exp::CampaignResult run = exp::RunCampaign(campaign, options);
    bench::ScenarioTiming timing = bench::FromReports(
        "e2e_step", timer.Seconds(),
        {run.cells[0].report, run.cells[1].report});
    timing.notes = "BASE + CLOVER step-trace cells via the campaign "
                   "engine (" + timing.notes + ")";
    suite.scenarios.push_back(timing);
  }

  {
    // Step trace: the fault windows land on moving carbon, so CLOVER keeps
    // optimizing through the failure.
    const carbon::CarbonTrace step = clover::carbon::CarbonTrace(
        "bench-step", 3600.0,
        [] {
          std::vector<double> values(48);
          for (std::size_t i = 0; i < values.size(); ++i)
            values[i] = (i / 2) % 2 == 0 ? 120.0 : 320.0;
          return values;
        }());
    suite.scenarios.push_back(bench::RunFaultRecovery(flags, scale, step));
  }

  suite.scenarios.push_back(bench::RunFleetRouting(flags, scale));
  suite.scenarios.push_back(bench::RunMeanFieldFleet(flags, scale));
  suite.scenarios.push_back(bench::RunLiveServing(flags, scale, flat));
  suite.scenarios.push_back(bench::RunObsOverhead(flags, scale, flat));

  std::filesystem::create_directories(flags.out_dir);
  const std::string json_path =
      flags.out_dir + "/BENCH_" + flags.suite + ".json";
  bench::WriteBenchJson(suite, json_path);
  bench::PrintSuiteTable(suite);
  std::cout << "\nwrote " << json_path << "\n";

  // Flight-recorder dumps: the suite's Chrome trace (Perfetto-loadable;
  // scripts/validate_trace_json.py checks it in CI) and the metrics
  // snapshot log.
  const std::string trace_path =
      flags.out_dir + "/TRACE_" + flags.suite + ".json";
  const std::string metrics_path =
      flags.out_dir + "/METRICS_" + flags.suite + ".json";
  obs::Tracer::Get().WriteChromeTrace(trace_path);
  obs::Registry::Get().WriteMetricsJson(metrics_path);
  std::cout << "wrote " << trace_path << " and " << metrics_path << "\n";

  bool deterministic = true;
  for (const bench::ScenarioTiming& scenario : suite.scenarios) {
    if (scenario.deterministic) continue;
    deterministic = false;
    // Self-diagnosing failure: capture everything needed to replay this
    // determinism breach from the artifact alone.
    obs::TriageContext context;
    context.name = "bench-" + scenario.name;
    context.reason = "bench scenario '" + scenario.name +
                     "' was not bit-identical to its serial twin";
    context.repro_command = "./build/bench/bench_runner --suite " +
                            flags.suite + " --threads " +
                            std::to_string(flags.threads) + " --seed " +
                            std::to_string(flags.seed);
    context.config = {{"suite", flags.suite},
                      {"scenario", scenario.name},
                      {"threads", std::to_string(flags.threads)},
                      {"seed", std::to_string(flags.seed)}};
    context.details = scenario.notes;
    const std::string bundle = obs::WriteTriageBundle(context);
    if (!bundle.empty())
      std::cerr << "bench: triage bundle written to " << bundle << "\n";
  }
  if (!deterministic) {
    std::cerr << "FAIL: parallel run was not bit-identical to serial\n";
    return 1;
  }
  return 0;
}
