// Fig. 4: 14-day carbon-intensity traces from two grid operators (US CISO,
// UK ESO) in March and September — summary statistics and hourly profile.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 4 — 14-day carbon-intensity traces", flags);

  carbon::TraceGeneratorOptions options;
  options.duration_hours = 14 * 24;
  options.seed = flags.seed + 41;

  TextTable table({"trace", "min", "mean", "max", "stddev",
                   "max swing in 12h"});
  CsvWriter csv(bench::OutPath(flags, "fig04_traces.csv"),
                {"trace", "hour", "gco2_per_kwh"});
  for (carbon::TraceProfile profile :
       {carbon::TraceProfile::kCisoMarch, carbon::TraceProfile::kCisoSeptember,
        carbon::TraceProfile::kEsoMarch}) {
    const carbon::CarbonTrace trace = GenerateTrace(profile, options);
    const auto stats = trace.Summary();
    table.AddRow({trace.name(), TextTable::Num(stats.min(), 0),
                  TextTable::Num(stats.mean(), 0),
                  TextTable::Num(stats.max(), 0),
                  TextTable::Num(stats.stddev(), 0),
                  TextTable::Num(trace.MaxSwingWithin(12 * 3600.0), 0)});
    for (int hour = 0; hour < 14 * 24; ++hour)
      csv.WriteRow(std::vector<std::string>{
          trace.name(), std::to_string(hour),
          std::to_string(trace.At(hour * 3600.0))});
  }
  table.Print(std::cout);
  std::cout << "\npaper: intensity varies by >200 gCO2/kWh within half a "
               "day; regions differ in pattern.\ncsv: "
            << csv.path() << "\n";
  return 0;
}
