// Fig. 3: GPU partitioning trade-off — carbon footprint and latency of
// configurations C1 (full GPU, config 1), C2 ({4g,2g,1g}, config 3) and C3
// (seven 1g, config 19), hosting the same model variant everywhere, at the
// same request rate and carbon intensity. Values normalized to C1.
#include <iostream>

#include "bench_util.h"
#include "carbon/trace.h"
#include "common/table.h"
#include "perf/perf_model.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner(
      "Fig. 3 — partitioning: carbon vs latency (same variant, fixed CI)",
      flags);

  // YOLOv5l: fits every slice type and is wide enough (saturation width
  // 2.5 slices) that a 1g slice stretches its service time ~2x — the
  // per-request latency effect the paper's Fig. 3 shows. Utilization is
  // kept moderate so queueing does not mask it.
  const auto app = models::Application::kDetection;
  const auto& zoo = models::DefaultZoo();
  const auto& family = zoo.ForApplication(app);
  const int variant = 0;
  constexpr int kGpus = 1;
  const double service_ms = perf::PerfModel::LatencyMs(
      family, family.Variant(variant), mig::SliceType::k7g);
  const double rate = 0.5 * kGpus / (service_ms / 1e3);
  const carbon::CarbonTrace flat("fixed-ci", 3600.0,
                                 std::vector<double>(100, 250.0));

  struct Row {
    const char* name;
    int layout_id;
    sim::Measurement m;
  };
  std::vector<Row> rows = {{"C1 (config 1, full GPU)", 1, {}},
                           {"C2 (config 3, {4g,2g,1g})", 3, {}},
                           {"C3 (config 19, 7x 1g)", 19, {}}};
  for (Row& row : rows) {
    serving::Deployment deployment =
        serving::MakeUniform(app, kGpus, row.layout_id, variant);
    sim::SimOptions options;
    options.arrival_rate_qps = rate;
    options.window_seconds = 600.0;
    options.seed = flags.seed;
    sim::ClusterSim sim(deployment, zoo, &flat, options);
    sim.AdvanceTo(600.0);
    row.m = sim.Measure(1800.0);
  }

  const sim::Measurement& c1 = rows[0].m;
  TextTable table({"configuration", "carbon (norm to C1)",
                   "latency (norm to C1)", "energy/req (J)", "mean (ms)",
                   "p95 (ms)"});
  for (const Row& row : rows)
    table.AddRow({row.name,
                  TextTable::Num(row.m.energy_per_request_j /
                                     c1.energy_per_request_j,
                                 2),
                  TextTable::Num(row.m.mean_ms / c1.mean_ms, 2),
                  TextTable::Num(row.m.energy_per_request_j, 2),
                  TextTable::Num(row.m.mean_ms, 1),
                  TextTable::Num(row.m.p95_ms, 1)});
  table.Print(std::cout);
  std::cout << "\npaper: C3 reduces carbon ~30% vs C1 while latency grows "
               "(~2x); C2 sits between.\n";
  return 0;
}
