// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --hours <H>    evaluation-trace length (default 48, the paper's span)
//   --gpus <N>     cluster size (default 10, the paper's testbed)
//   --seed <S>     global seed (default 1)
//   --out <dir>    directory for CSV dumps (default "bench_out")
// and prints aligned tables whose rows mirror the paper exhibit.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "carbon/trace_generator.h"
#include "core/harness.h"

namespace clover::bench {

struct Flags {
  double hours = 48.0;
  int gpus = 10;
  std::uint64_t seed = 1;
  std::string out_dir = "bench_out";
};

Flags ParseFlags(int argc, char** argv);

// Evaluation trace for a profile at the flags' duration/seed.
carbon::CarbonTrace EvalTrace(carbon::TraceProfile profile,
                              const Flags& flags);

// Evaluation trace for a named region preset (fig16 and the fleet bench
// share these inputs; see carbon::NamedRegionPresets).
carbon::CarbonTrace EvalTrace(const carbon::RegionPreset& preset,
                              const Flags& flags);

// Runs experiments in parallel across worker threads (each worker owns an
// ExperimentHarness; determinism makes results independent of placement).
std::vector<core::RunReport> RunAll(
    const std::vector<core::ExperimentConfig>& configs, int parallelism = 2);

// Ensures flags.out_dir exists and returns "<out_dir>/<file>".
std::string OutPath(const Flags& flags, const std::string& file);

// Header banner with the reproduction context.
void PrintBanner(const std::string& exhibit, const Flags& flags);

}  // namespace clover::bench
