// Hot-path microbenchmarks for the optimizer's graph machinery: GED,
// canonical keys, feasibility (decomposition) and neighbor sampling.
#include <benchmark/benchmark.h>

#include "graph/config_graph.h"
#include "graph/ged.h"
#include "graph/mapping.h"
#include "graph/neighbors.h"

namespace {

using namespace clover;

graph::ConfigGraph MakeMixedGraph() {
  graph::ConfigGraph g(models::Application::kClassification, 4);
  g.SetWeight(3, mig::SliceType::k7g, 2);
  g.SetWeight(2, mig::SliceType::k2g, 6);
  g.SetWeight(1, mig::SliceType::k1g, 30);
  g.SetWeight(0, mig::SliceType::k1g, 10);
  return g;
}

void BM_GraphEditDistance(benchmark::State& state) {
  const graph::ConfigGraph a = MakeMixedGraph();
  graph::ConfigGraph b = a;
  b.AddWeight(1, mig::SliceType::k1g, -3);
  b.AddWeight(2, mig::SliceType::k3g, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::GraphEditDistance(a, b));
}
BENCHMARK(BM_GraphEditDistance);

void BM_GraphKey(benchmark::State& state) {
  const graph::ConfigGraph g = MakeMixedGraph();
  for (auto _ : state) benchmark::DoNotOptimize(g.Key());
}
BENCHMARK(BM_GraphKey);

void BM_FeasibilityCheck(benchmark::State& state) {
  graph::GraphMapper mapper(&models::DefaultZoo(),
                            static_cast<int>(state.range(0)));
  const graph::ConfigGraph g = MakeMixedGraph();
  for (auto _ : state) benchmark::DoNotOptimize(mapper.IsFeasible(g));
}
BENCHMARK(BM_FeasibilityCheck)->Arg(10)->Arg(32);

void BM_ToDeployment(benchmark::State& state) {
  graph::GraphMapper mapper(&models::DefaultZoo(), 10);
  const graph::ConfigGraph g = MakeMixedGraph();
  for (auto _ : state) benchmark::DoNotOptimize(mapper.ToDeployment(g));
}
BENCHMARK(BM_ToDeployment);

void BM_NeighborSample(benchmark::State& state) {
  graph::GraphMapper mapper(&models::DefaultZoo(), 10);
  graph::NeighborSampler sampler(&mapper, 7);
  graph::ConfigGraph center = MakeMixedGraph();
  for (auto _ : state) {
    auto neighbor = sampler.Sample(center);
    benchmark::DoNotOptimize(neighbor);
  }
}
BENCHMARK(BM_NeighborSample);

}  // namespace

BENCHMARK_MAIN();
