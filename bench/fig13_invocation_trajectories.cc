// Fig. 13: the configurations Clover evaluates during its first, second and
// last optimization invocations (image classification), in evaluation
// order, with SLA disposition — plus the ORACLE point at the same carbon
// intensity.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 13 — optimization invocation trajectories", flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);

  core::ExperimentConfig config;
  config.app = models::Application::kClassification;
  config.scheme = core::Scheme::kClover;
  config.trace = &trace;
  config.duration_hours = flags.hours;
  config.num_gpus = flags.gpus;
  config.sizing_gpus = flags.gpus;
  config.seed = flags.seed;

  core::ExperimentHarness harness(&models::DefaultZoo());
  const core::RunReport report = harness.Run(config);
  if (report.optimizations.empty()) {
    std::cout << "no optimization invocations ran (trace too flat?)\n";
    return 1;
  }

  core::Oracle& oracle = harness.OracleFor(
      config.app, config.num_gpus, report.arrival_rate_qps, config.seed);

  auto show = [&](const char* label, const core::OptimizationRun& run) {
    std::cout << label << " (t=" << TextTable::Num(run.start_s / 3600.0, 1)
              << "h, ci=" << TextTable::Num(run.ci, 0) << " gCO2/kWh, "
              << TextTable::Num(run.DurationSeconds(), 0) << "s):\n";
    TextTable table({"order", "carbon save (%)", "accuracy gain (%)",
                     "meets SLA", "cached", "chosen"});
    for (const opt::EvalRecord& record : run.search.evaluations) {
      table.AddRow({std::to_string(record.order),
                    TextTable::Num(record.delta_carbon_pct, 1),
                    TextTable::Num(record.delta_accuracy_pct, 2),
                    record.sla_ok ? "yes" : "NO",
                    record.from_cache ? "yes" : "",
                    record.graph == run.search.best ? "<--" : ""});
    }
    table.Print(std::cout);
    const core::OracleEntry& entry = oracle.Select(report.params, run.ci);
    std::cout << "  ORACLE at this ci: carbon save "
              << TextTable::Num(
                     opt::DeltaCarbonPct(entry.metrics, report.params, run.ci),
                     1)
              << "%, accuracy gain "
              << TextTable::Num(
                     opt::DeltaAccuracyPct(entry.metrics, report.params), 2)
              << "%\n\n";
  };

  show("Invocation I (cold start)", report.optimizations.front());
  if (report.optimizations.size() > 1)
    show("Invocation II", report.optimizations[1]);
  if (report.optimizations.size() > 2)
    show("Last invocation", report.optimizations.back());

  std::cout << "paper: invocation I explores mostly SLA-violating configs "
               "and settles on the one compliant find; invocation II starts\n"
               "from I's winner and improves on both axes; the last "
               "invocation converges near ORACLE in a handful of\n"
               "evaluations, all SLA-compliant.\n";
  return 0;
}
