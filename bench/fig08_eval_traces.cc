// Fig. 8: the 48-hour evaluation traces (US CISO March, US CISO September,
// UK ESO March) used throughout Sec. 5.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 8 — 48 h evaluation traces", flags);

  TextTable table({"trace", "hours", "min", "mean", "max",
                   "reopt triggers (5%)"});
  CsvWriter csv(bench::OutPath(flags, "fig08_traces.csv"),
                {"trace", "hour", "gco2_per_kwh"});
  for (carbon::TraceProfile profile :
       {carbon::TraceProfile::kCisoMarch, carbon::TraceProfile::kCisoSeptember,
        carbon::TraceProfile::kEsoMarch}) {
    const carbon::CarbonTrace trace = bench::EvalTrace(profile, flags);
    const auto stats = trace.Summary();

    // Count how often the paper's 5% trigger would fire over the trace.
    int triggers = 0;
    double reference = trace.At(0.0);
    for (double t = 0.0; t < trace.DurationSeconds(); t += 300.0) {
      const double now = trace.At(t);
      if (std::abs(now - reference) > 0.05 * reference) {
        ++triggers;
        reference = now;
      }
    }

    table.AddRow({trace.name(), TextTable::Num(flags.hours, 0),
                  TextTable::Num(stats.min(), 0),
                  TextTable::Num(stats.mean(), 0),
                  TextTable::Num(stats.max(), 0), std::to_string(triggers)});
    for (int hour = 0; hour * 3600.0 < trace.DurationSeconds(); ++hour)
      csv.WriteRow(std::vector<std::string>{
          trace.name(), std::to_string(hour),
          std::to_string(trace.At(hour * 3600.0))});
  }
  table.Print(std::cout);
  std::cout << "\ncsv: " << csv.path() << "\n";
  return 0;
}
