// Fig. 14: (a) the effect of the lambda weight (0.1 / 0.5 / 0.9) at a fixed
// 100 gCO2/kWh intensity — lower lambda trades carbon for accuracy;
// (b) accuracy-threshold mode: the maximum allowed accuracy loss is
// enforced as a constraint and Clover maximizes carbon savings within it.
// Image classification, as in the paper.
#include <iostream>

#include "bench_util.h"
#include "carbon/trace.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 14 — lambda sweep and accuracy-loss limits",
                     flags);

  // (a) constant 100 gCO2/kWh trace; a shorter span suffices since the
  // intensity never changes after convergence.
  const double lambda_hours = std::min(flags.hours, 12.0);
  const carbon::CarbonTrace flat100(
      "flat-100", 300.0,
      std::vector<double>(static_cast<std::size_t>(lambda_hours * 12 + 12),
                          100.0));

  std::vector<core::ExperimentConfig> lambda_configs;
  for (double lambda : {0.1, 0.5, 0.9}) {
    for (core::Scheme scheme : {core::Scheme::kBase, core::Scheme::kClover}) {
      core::ExperimentConfig config;
      config.app = models::Application::kClassification;
      config.scheme = scheme;
      config.trace = &flat100;
      config.duration_hours = lambda_hours;
      config.num_gpus = flags.gpus;
      config.sizing_gpus = flags.gpus;
      config.lambda = lambda;
      config.seed = flags.seed;
      lambda_configs.push_back(config);
    }
  }
  const auto lambda_reports = bench::RunAll(lambda_configs);

  std::cout << "(a) adjusting lambda @100 gCO2/kWh:\n";
  TextTable lambda_table({"lambda", "carbon save (%)", "accuracy gain (%)"});
  for (std::size_t i = 0; i < lambda_reports.size(); i += 2) {
    const core::RunReport& base = lambda_reports[i];
    const core::RunReport& clover = lambda_reports[i + 1];
    lambda_table.AddRow(
        {TextTable::Num(lambda_configs[i].lambda, 1),
         TextTable::Num(clover.CarbonSavePctVs(base), 1),
         TextTable::Num(clover.AccuracyGainPctVs(base), 2)});
  }
  lambda_table.Print(std::cout);

  // (b) accuracy-loss thresholds over the CISO March trace.
  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  std::vector<core::ExperimentConfig> limit_configs;
  {
    core::ExperimentConfig base_config;
    base_config.app = models::Application::kClassification;
    base_config.scheme = core::Scheme::kBase;
    base_config.trace = &trace;
    base_config.duration_hours = flags.hours;
    base_config.num_gpus = flags.gpus;
    base_config.sizing_gpus = flags.gpus;
    base_config.seed = flags.seed;
    limit_configs.push_back(base_config);
    for (double limit : {0.2, 0.4, 0.8, 1.6, 3.2}) {
      core::ExperimentConfig config = base_config;
      config.scheme = core::Scheme::kClover;
      config.accuracy_limit_pct = limit;
      limit_configs.push_back(config);
    }
  }
  const auto limit_reports = bench::RunAll(limit_configs);

  std::cout << "\n(b) enforcing an accuracy-loss limit (CISO March):\n";
  TextTable limit_table({"allowed accuracy loss (%)", "carbon save (%)",
                         "actual accuracy loss (%)"});
  for (std::size_t i = 1; i < limit_reports.size(); ++i) {
    limit_table.AddRow(
        {TextTable::Num(*limit_configs[i].accuracy_limit_pct, 1),
         TextTable::Num(limit_reports[i].CarbonSavePctVs(limit_reports[0]),
                        1),
         TextTable::Num(
             limit_reports[i].AccuracyLossPctVs(limit_reports[0]), 2)});
  }
  limit_table.Print(std::cout);
  std::cout << "\npaper: lambda 0.1 -> highest accuracy, 0.9 -> highest "
               "savings; with a 0.2-0.8% loss budget Clover still saves "
               "60-75% carbon.\n";
  return 0;
}
