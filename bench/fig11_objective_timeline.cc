// Fig. 11: the optimization objective (Eq. 3) of each scheme over the 48 h
// trace, per application. Prints hourly series to CSV and a per-scheme
// summary including the Clover-vs-Oracle tracking gap at hours 0/24/48.
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 11 — objective over time (CISO March)", flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  const std::vector<core::Scheme> schemes = {
      core::Scheme::kCo2Opt, core::Scheme::kBlover, core::Scheme::kClover,
      core::Scheme::kOracle};

  std::vector<core::ExperimentConfig> configs;
  for (models::Application app :
       {models::Application::kDetection, models::Application::kLanguage,
        models::Application::kClassification}) {
    for (core::Scheme scheme : schemes) {
      core::ExperimentConfig config;
      config.app = app;
      config.scheme = scheme;
      config.trace = &trace;
      config.duration_hours = flags.hours;
      config.num_gpus = flags.gpus;
      config.sizing_gpus = flags.gpus;
      config.seed = flags.seed;
      configs.push_back(config);
    }
  }
  const auto reports = bench::RunAll(configs);

  CsvWriter csv(bench::OutPath(flags, "fig11_objective.csv"),
                {"application", "scheme", "hour", "objective"});
  for (std::size_t a = 0; a < 3; ++a) {
    std::cout << models::ApplicationName(reports[a * schemes.size()].app)
              << ":\n";
    TextTable table({"scheme", "mean objective", "objective @0h", "@24h",
                     "@end"});
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const core::RunReport& report = reports[a * schemes.size() + s];
      RunningStats stats;
      const std::size_t windows_per_hour = static_cast<std::size_t>(
          3600.0 / 300.0);
      for (std::size_t w = 0; w < report.objective_series.size(); ++w) {
        stats.Add(report.objective_series[w]);
        if (w % windows_per_hour == 0)
          csv.WriteRow(std::vector<std::string>{
              std::string(models::ApplicationName(report.app)),
              std::string(core::SchemeName(report.scheme)),
              std::to_string(w / windows_per_hour),
              std::to_string(report.objective_series[w])});
      }
      auto at_hour = [&](double hour) {
        const std::size_t w = std::min(
            report.objective_series.size() - 1,
            static_cast<std::size_t>(hour * windows_per_hour));
        return report.objective_series[w];
      };
      table.AddRow({std::string(core::SchemeName(report.scheme)),
                    TextTable::Num(stats.mean(), 2),
                    TextTable::Num(at_hour(0.5), 2),
                    TextTable::Num(at_hour(flags.hours / 2.0), 2),
                    TextTable::Num(at_hour(flags.hours - 0.5), 2)});
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout << "paper: CLOVER's objective closely follows ORACLE (largest "
               "gap at hour 0, shrinking by hour 24/48 as the evaluation\n"
               "cache warms); BLOVER trails CLOVER; CO2OPT is flat and "
               "lowest when intensity is low.\ncsv: "
            << csv.path() << "\n";
  return 0;
}
