// Shared timing + machine-readable perf emission for the bench binaries.
//
// Every bench that reports speed goes through this one code path so the
// human table printed by a smoke run and the BENCH_*.json consumed by CI
// are computed from the same numbers:
//
//   WallTimer            monotonic stopwatch
//   ScenarioTiming       one benchmark scenario's metrics (the JSON row)
//   SuiteTiming          a named suite of scenarios (one BENCH_<name>.json)
//   FromReports          harness RunReports -> ScenarioTiming (events/sec,
//                        p50/p99 over the runs' simulated latencies)
//   WriteBenchJson       emits the clover-bench-v1 document
//   PrintSuiteTable      the aligned human table of the same data
//
// Schema (clover-bench-v1), validated by scripts/validate_bench_json.py:
//   { "schema": "clover-bench-v1", "suite": str, "threads": int,
//     "host_cores": int, "seed": int, "build": str, "scenarios": [ {
//         "name": str, "wall_seconds": num, "events": int,
//         "events_per_sec": num, "candidates": int,
//         "candidates_per_sec": num, "sim_p50_ms": num, "sim_p99_ms": num,
//         "speedup_vs_serial": num, "deterministic": bool, "notes": str
//     } ... ] }
// Fields that do not apply to a scenario are 0 (numbers) / true / "".
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/harness.h"

namespace clover::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct ScenarioTiming {
  std::string name;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;          // simulated events processed
  double events_per_sec = 0.0;       // events / wall_seconds
  std::uint64_t candidates = 0;      // optimizer candidates evaluated
  double candidates_per_sec = 0.0;   // candidates / wall_seconds
  double sim_p50_ms = 0.0;           // simulated request latency
  double sim_p99_ms = 0.0;
  double speedup_vs_serial = 0.0;    // parallel scenarios only (0 = n/a)
  bool deterministic = true;         // parallel == serial results?
  std::string notes;
};

struct SuiteTiming {
  std::string suite;
  int threads = 1;
  // Hardware concurrency of the machine that produced the numbers —
  // without it a 0.9x "speedup" on a core-starved host is
  // indistinguishable from a real parallelization regression. Filled by
  // WriteBenchJson when left at 0.
  int host_cores = 0;
  std::uint64_t seed = 1;
  std::vector<ScenarioTiming> scenarios;
};

// Aggregates harness reports into one scenario row: events and events/sec
// are summed over the reports; p50/p99 are the worst (largest) across the
// reports — the conservative read for an SLO-focused suite.
ScenarioTiming FromReports(const std::string& name, double wall_seconds,
                           const std::vector<core::RunReport>& reports);

// Writes BENCH_<suite>.json content (clover-bench-v1) to `path`.
void WriteBenchJson(const SuiteTiming& suite, const std::string& path);

// Prints the suite as an aligned human table (same values as the JSON).
void PrintSuiteTable(const SuiteTiming& suite);

}  // namespace clover::bench
