// Shared timing + machine-readable perf emission for the bench binaries.
//
// The clover-bench-v1 types and writers moved to src/exp/bench_json.h so
// the campaign runner (exp/runner.h) emits the exact same schema through
// the exact same code; this header re-exports them under clover::bench for
// the bench binaries and adds the monotonic WallTimer every scenario uses.
// Schema documentation lives with the implementation in exp/bench_json.h.
#pragma once

#include <chrono>

#include "exp/bench_json.h"

namespace clover::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

using exp::ScenarioTiming;
using exp::SuiteTiming;
using exp::FromReports;
using exp::WriteBenchJson;
using exp::PrintSuiteTable;

}  // namespace clover::bench
