// Sec. 5.2.1 back-of-envelope: the physical significance of Clover's
// per-request carbon saving, scaled to 25 million inferences/day at the US
// average intensity of 380 gCO2/kWh with PUE 1.5, expressed in car-km and
// coal-kg equivalents (EPA conversion factors the paper cites).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Sec. 5.2.1 — physical significance of the savings",
                     flags);

  // Measure the per-request energy saving of CLOVER vs BASE on a short run
  // (classification, CISO March) and convert at the paper's reference
  // conditions.
  const double hours = std::min(flags.hours, 12.0);
  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  std::vector<core::ExperimentConfig> configs;
  for (core::Scheme scheme : {core::Scheme::kBase, core::Scheme::kClover}) {
    core::ExperimentConfig config;
    config.app = models::Application::kClassification;
    config.scheme = scheme;
    config.trace = &trace;
    config.duration_hours = hours;
    config.num_gpus = flags.gpus;
    config.sizing_gpus = flags.gpus;
    config.seed = flags.seed;
    configs.push_back(config);
  }
  const auto reports = bench::RunAll(configs);
  const core::RunReport& base = reports[0];
  const core::RunReport& clover = reports[1];

  const double e_base_j =
      base.total_energy_j / static_cast<double>(base.completions);
  const double e_clover_j =
      clover.total_energy_j / static_cast<double>(clover.completions);
  const double us_ci = 380.0;  // gCO2/kWh, US average (paper Sec. 5.2.1)
  const double pue = 1.5;
  const double saved_g_per_req =
      CarbonGrams(e_base_j - e_clover_j, us_ci, pue);
  const double requests_per_day = 25e6;
  const double saved_kg_per_day = saved_g_per_req * requests_per_day / 1e3;

  // EPA equivalencies: ~404 gCO2 per car-mile -> 251 g/km; ~2.86 kgCO2 per
  // kg of coal burned.
  const double car_km = saved_kg_per_day * 1e3 / 251.0;
  const double coal_kg = saved_kg_per_day / 2.86;

  TextTable table({"quantity", "value"});
  table.AddRow({"BASE energy/request (J)", TextTable::Num(e_base_j, 2)});
  table.AddRow({"CLOVER energy/request (J)", TextTable::Num(e_clover_j, 2)});
  table.AddRow({"saved carbon per request (gCO2)",
                TextTable::Num(saved_g_per_req, 4)});
  table.AddRow({"saved per day @25M req (kg CO2)",
                TextTable::Num(saved_kg_per_day, 1)});
  table.AddRow({"equivalent gasoline-car distance (km/day)",
                TextTable::Num(car_km, 0)});
  table.AddRow({"equivalent coal not burned (kg/day)",
                TextTable::Num(coal_kg, 0)});
  table.Print(std::cout);
  std::cout << "\npaper: 6.77e-3 gCO2/request -> ~170 kg CO2/day ~ 680 "
               "car-km ~ 85 kg coal. Absolute numbers scale with the\n"
               "calibration constants (see EXPERIMENTS.md); the conversion "
               "chain is identical.\n";
  return 0;
}
