// Ablation study of Clover's optimizer design choices (DESIGN.md Sec. 7):
//   (a) the evaluation cache ("saved" evaluations, Fig. 12b);
//   (b) the composite split/merge neighbor moves;
//   (c) the GED-4 neighborhood radius vs a tighter GED-2 one.
// Each variant runs simulated annealing against the analytic evaluator
// (zero evaluation cost, so the comparison isolates *search* quality) from
// the BASE configuration at high carbon intensity; reported is the best
// objective reached within a fixed evaluation budget, averaged over seeds.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "opt/annealing.h"
#include "opt/evaluator.h"
#include "sim/arrivals.h"

namespace {

using namespace clover;

struct VariantSpec {
  const char* name;
  bool cache;
  bool split_merge;
  int max_ged;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Ablation — optimizer design choices", flags);

  const auto app = models::Application::kClassification;
  const auto& zoo = models::DefaultZoo();
  const double rate = sim::SizeArrivalRate(zoo, app, flags.gpus, 0.75);

  // Objective context from the analytic BASE point.
  opt::AnalyticEvaluator base_eval(&zoo, flags.gpus, rate, 1e9);
  graph::ConfigGraph base(app, zoo.ForApplication(app).NumVariants());
  base.SetWeight(zoo.ForApplication(app).NumVariants() - 1,
                 mig::SliceType::k7g, flags.gpus);
  const opt::EvalOutcome base_outcome = base_eval.Evaluate(base);
  opt::ObjectiveParams params;
  params.lambda = 0.5;
  params.a_base = base_outcome.metrics.accuracy;
  params.c_base_g = CarbonGrams(base_outcome.metrics.energy_per_request_j,
                                250.0, 1.5);
  params.l_tail_ms = base_outcome.metrics.p95_ms * 1.2;
  params.pue = 1.5;
  const double ci = 300.0;

  const VariantSpec variants[] = {
      {"full (cache + split/merge, GED 4)", true, true, 4},
      {"no evaluation cache", false, true, 4},
      {"no split/merge moves", true, false, 4},
      {"GED 2 neighborhood", true, true, 2},
  };

  // Mirror the live system: invocations are short (terminate after 5
  // consecutive non-improvements or ~12 evaluations — the 5-minute budget
  // at ~25 s/evaluation) and warm-start from the previous winner. We chain
  // invocations and report how the best objective evolves.
  constexpr int kInvocations = 12;
  TextTable table({"variant", "best f @3 invocations", "@6", "@12",
                   "total evals", "cache hits"});
  for (const VariantSpec& spec : variants) {
    RunningStats f_at3, f_at6, f_at12, evals, hits;
    for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull}) {
      opt::AnalyticEvaluator evaluator(&zoo, flags.gpus, rate,
                                       params.l_tail_ms);
      opt::CachingEvaluator cache(&evaluator);
      graph::GraphMapper mapper(&zoo, flags.gpus);
      graph::NeighborSampler::Options nopts;
      nopts.enable_split_merge = spec.split_merge;
      nopts.max_ged = spec.max_ged;
      if (spec.max_ged <= 2) nopts.second_move_probability = 0.0;
      graph::NeighborSampler sampler(&mapper, seed, nopts);
      opt::SimulatedAnnealing::Options sopts;
      sopts.time_budget_s = 1e12;
      sopts.no_improve_limit = 5;
      sopts.max_evaluations = 12;
      opt::SimulatedAnnealing annealer(
          spec.cache ? static_cast<opt::Evaluator*>(&cache) : &evaluator,
          &sampler, sopts, seed);

      graph::ConfigGraph center = base;
      double total_evals = 0.0, total_hits = 0.0, best = 0.0;
      for (int invocation = 0; invocation < kInvocations; ++invocation) {
        const opt::SearchResult result = annealer.Run(center, params, ci);
        center = result.best;  // warm start
        best = result.best_f;
        total_evals += static_cast<double>(result.evaluations.size());
        total_hits += static_cast<double>(result.cache_hits);
        if (invocation == 2) f_at3.Add(best);
        if (invocation == 5) f_at6.Add(best);
      }
      f_at12.Add(best);
      evals.Add(total_evals);
      hits.Add(total_hits);
    }
    table.AddRow({spec.name, TextTable::Num(f_at3.mean(), 2),
                  TextTable::Num(f_at6.mean(), 2),
                  TextTable::Num(f_at12.mean(), 2),
                  TextTable::Num(evals.mean(), 1),
                  TextTable::Num(hits.mean(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nreading: in this noise-free analytic setting every "
               "variant converges to a similar optimum, and small moves are\n"
               "competitive — the advantage of the composite moves and the "
               "GED-4 radius shows up in the *live* system, where each\n"
               "evaluation costs ~25 simulated seconds and p95 measurements "
               "are noisy near the SLA boundary (compare Fig. 13's\n"
               "trajectories). The cache's hits are free evaluations, which "
               "in the live system directly reduce optimization time\n"
               "(Fig. 12's CLOVER-vs-BLOVER gap).\n";
  return 0;
}
