// Fig. 2: mixed-quality model serving on a 4-GPU system — carbon emission
// reduction vs normalized accuracy, relative to hosting the highest-quality
// variant on every GPU. Carbon intensity is held constant (as in the
// paper's motivation experiment); each GPU hosts one variant,
// unpartitioned.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "carbon/trace.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/units.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"

namespace {

struct Point {
  std::vector<int> mix;  // variant ordinal per GPU
  double carbon_reduction_pct = 0.0;
  double accuracy_norm = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 2 — mixed-quality frontier (4 GPUs, fixed CI)",
                     flags);

  constexpr int kGpus = 4;
  const auto app = models::Application::kClassification;
  const auto& zoo = models::DefaultZoo();
  const auto& family = zoo.ForApplication(app);
  const double rate = sim::SizeArrivalRate(zoo, app, kGpus, 0.75);
  const carbon::CarbonTrace flat("fixed-ci", 3600.0,
                                 std::vector<double>(100, 250.0));

  auto measure = [&](const std::vector<int>& mix) {
    serving::Deployment deployment;
    deployment.app = app;
    for (int ordinal : mix) {
      serving::GpuAssignment gpu;
      gpu.layout_id = 1;
      gpu.variant_ordinals = {ordinal};
      deployment.gpus.push_back(gpu);
    }
    sim::SimOptions options;
    options.arrival_rate_qps = rate;
    options.window_seconds = 600.0;
    options.seed = flags.seed;
    sim::ClusterSim sim(deployment, zoo, &flat, options);
    sim.AdvanceTo(300.0);
    return sim.Measure(900.0);
  };

  // Baseline: highest quality everywhere (the star point (0, 1)).
  std::vector<int> base_mix(kGpus, family.NumVariants() - 1);
  const sim::Measurement base = measure(base_mix);

  // All multisets of 4 variants.
  std::vector<Point> points;
  for (int a = 0; a < family.NumVariants(); ++a)
    for (int b = a; b < family.NumVariants(); ++b)
      for (int c = b; c < family.NumVariants(); ++c)
        for (int d = c; d < family.NumVariants(); ++d) {
          const std::vector<int> mix{a, b, c, d};
          const sim::Measurement m = measure(mix);
          Point point;
          point.mix = mix;
          point.carbon_reduction_pct =
              (base.energy_per_request_j - m.energy_per_request_j) /
              base.energy_per_request_j * 100.0;
          point.accuracy_norm = m.weighted_accuracy / base.weighted_accuracy;
          points.push_back(point);
        }

  std::sort(points.begin(), points.end(), [](const Point& x, const Point& y) {
    return x.carbon_reduction_pct < y.carbon_reduction_pct;
  });

  TextTable table({"mix (ordinals)", "carbon reduction %", "accuracy (norm)"});
  CsvWriter csv(bench::OutPath(flags, "fig02_frontier.csv"),
                {"mix", "carbon_reduction_pct", "accuracy_norm"});
  for (const Point& point : points) {
    std::string mix;
    for (int v : point.mix) mix += family.Variant(v).name.back();
    table.AddRow({mix, TextTable::Num(point.carbon_reduction_pct, 1),
                  TextTable::Num(point.accuracy_norm, 3)});
    csv.WriteRow(std::vector<std::string>{
        mix, std::to_string(point.carbon_reduction_pct),
        std::to_string(point.accuracy_norm)});
  }
  table.Print(std::cout);

  // Headline checks mirroring the paper's reading of the figure.
  double best_save_within_5pct = 0.0;
  double best_save_within_10pct = 0.0;
  for (const Point& point : points) {
    if (point.accuracy_norm >= 0.95)
      best_save_within_5pct =
          std::max(best_save_within_5pct, point.carbon_reduction_pct);
    if (point.accuracy_norm >= 0.90)
      best_save_within_10pct =
          std::max(best_save_within_10pct, point.carbon_reduction_pct);
  }
  std::cout << "\npaper: >60% carbon saving within 5% accuracy loss; >80% "
               "within 10%\n"
            << "measured: " << TextTable::Num(best_save_within_5pct, 1)
            << "% within 5% loss, " << TextTable::Num(best_save_within_10pct, 1)
            << "% within 10% loss\n"
            << "csv: " << csv.path() << "\n";
  return 0;
}
