// Fig. 9: Clover vs BASE over the 48 h US CISO March trace, per application
// and overall — accuracy loss, carbon reduction, and SLA (p95) latency
// normalized to BASE.
//
// Timing goes through bench/timing.h (the bench_runner utilities): the
// human footer and the BENCH_fig09.json dropped into --out are computed
// from the same WallTimer/FromReports numbers, so smoke-test output and
// machine-readable baselines always agree.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "timing.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 9 — Clover effectiveness vs BASE (CISO March)",
                     flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  bench::WallTimer timer;

  std::vector<core::ExperimentConfig> configs;
  for (models::Application app :
       {models::Application::kDetection, models::Application::kLanguage,
        models::Application::kClassification}) {
    for (core::Scheme scheme : {core::Scheme::kBase, core::Scheme::kClover}) {
      core::ExperimentConfig config;
      config.app = app;
      config.scheme = scheme;
      config.trace = &trace;
      config.duration_hours = flags.hours;
      config.num_gpus = flags.gpus;
      config.sizing_gpus = flags.gpus;
      config.seed = flags.seed;
      configs.push_back(config);
    }
  }
  const auto reports = bench::RunAll(configs);

  TextTable table({"application", "accuracy loss (rel %)",
                   "accuracy loss (abs points)",
                   "carbon reduction vs BASE (%)", "p95 (norm to BASE)",
                   "requests served"});
  double loss_sum = 0.0, abs_sum = 0.0, save_sum = 0.0, sla_sum = 0.0;
  for (std::size_t i = 0; i < reports.size(); i += 2) {
    const core::RunReport& base = reports[i];
    const core::RunReport& clover = reports[i + 1];
    const double loss = clover.AccuracyLossPctVs(base);
    const double abs_loss = base.weighted_accuracy - clover.weighted_accuracy;
    const double save = clover.CarbonSavePctVs(base);
    const double sla = clover.P95NormVs(base);
    loss_sum += loss;
    abs_sum += abs_loss;
    save_sum += save;
    sla_sum += sla;
    table.AddRow({std::string(models::ApplicationName(base.app)),
                  TextTable::Num(loss, 2), TextTable::Num(abs_loss, 2),
                  TextTable::Num(save, 1), TextTable::Num(sla, 2),
                  std::to_string(clover.completions)});
  }
  table.AddRow({"Overall", TextTable::Num(loss_sum / 3.0, 2),
                TextTable::Num(abs_sum / 3.0, 2),
                TextTable::Num(save_sum / 3.0, 1),
                TextTable::Num(sla_sum / 3.0, 2), "-"});
  table.Print(std::cout);

  // Shared timing: one scenario row over all six runs, emitted both as the
  // perf footer and as machine-readable JSON next to the CSV dumps.
  bench::SuiteTiming suite;
  suite.suite = "fig09";
  suite.threads = 2;  // bench::RunAll's default worker parallelism
  suite.seed = flags.seed;
  suite.scenarios.push_back(
      bench::FromReports("fig09_clover_vs_base", timer.Seconds(), reports));
  bench::WriteBenchJson(suite, bench::OutPath(flags, "BENCH_fig09.json"));
  std::cout << "\n";
  bench::PrintSuiteTable(suite);

  std::cout << "\npaper: >75% carbon reduction per application with 2-4% "
               "accuracy loss (80% / 3% overall); p95 <= BASE.\n"
               "(The paper's accuracy axis is consistent with absolute "
               "metric points — CO2OPT detection sits at -6, exactly the\n"
               "55.0-49.0 mAP gap. Both conventions are printed; see "
               "EXPERIMENTS.md.)\n";
  return 0;
}
