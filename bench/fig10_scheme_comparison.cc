// Fig. 10: carbon savings vs accuracy gain (both relative to BASE) for
// CO2OPT, BLOVER, CLOVER and ORACLE, per application, over the 48 h CISO
// March trace.
#include <iostream>

#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 10 — scheme comparison (CISO March)", flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);
  const std::vector<core::Scheme> schemes = {
      core::Scheme::kBase, core::Scheme::kCo2Opt, core::Scheme::kBlover,
      core::Scheme::kClover, core::Scheme::kOracle};

  std::vector<core::ExperimentConfig> configs;
  for (models::Application app :
       {models::Application::kDetection, models::Application::kLanguage,
        models::Application::kClassification}) {
    for (core::Scheme scheme : schemes) {
      core::ExperimentConfig config;
      config.app = app;
      config.scheme = scheme;
      config.trace = &trace;
      config.duration_hours = flags.hours;
      config.num_gpus = flags.gpus;
      config.sizing_gpus = flags.gpus;
      config.seed = flags.seed;
      configs.push_back(config);
    }
  }
  const auto reports = bench::RunAll(configs);

  CsvWriter csv(bench::OutPath(flags, "fig10_schemes.csv"),
                {"application", "scheme", "carbon_save_pct",
                 "accuracy_gain_pct"});
  const std::size_t per_app = schemes.size();
  for (std::size_t a = 0; a < 3; ++a) {
    const core::RunReport& base = reports[a * per_app];
    std::cout << models::ApplicationName(base.app) << ":\n";
    TextTable table({"scheme", "carbon save (%)", "accuracy gain (%)",
                     "p95 norm", "opt time (%)"});
    for (std::size_t s = 1; s < per_app; ++s) {
      const core::RunReport& report = reports[a * per_app + s];
      const double save = report.CarbonSavePctVs(base);
      const double gain = report.AccuracyGainPctVs(base);
      table.AddRow({std::string(core::SchemeName(report.scheme)),
                    TextTable::Num(save, 1), TextTable::Num(gain, 2),
                    TextTable::Num(report.P95NormVs(base), 2),
                    TextTable::Num(report.optimization_seconds /
                                       (flags.hours * 3600.0) * 100.0,
                                   2)});
      csv.WriteRow(std::vector<std::string>{
          std::string(models::ApplicationName(base.app)),
          std::string(core::SchemeName(report.scheme)), std::to_string(save),
          std::to_string(gain)});
    }
    table.Print(std::cout);
    std::cout << '\n';
  }
  std::cout << "paper: CO2OPT saves the most carbon at the lowest accuracy; "
               "CLOVER is within ~5% of CO2OPT's savings at much higher\n"
               "accuracy, beats BLOVER on both axes, and lands closest to "
               "ORACLE.\ncsv: "
            << csv.path() << "\n";
  return 0;
}
