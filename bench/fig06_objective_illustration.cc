// Fig. 6: how the objective (Eq. 3) makes Clover prefer the low-carbon
// configuration A at high carbon intensity and the high-accuracy
// configuration B at low intensity. Reproduces the worked example with
// lambda = 0.1, Cbase = 1000.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "opt/objective.h"

int main(int argc, char** argv) {
  using namespace clover;
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 6 — configuration preference vs carbon intensity",
                     flags);

  opt::ObjectiveParams params;
  params.lambda = 0.1;
  params.a_base = 100.0;
  params.c_base_g = 1000.0;
  params.l_tail_ms = 100.0;
  params.pue = 1.0;

  // E in the figure's abstract units; metrics carry joules, so encode E as
  // kWh -> CarbonGrams(E_kwh, ci, pue=1) = E * ci.
  auto metrics = [](double e_units, double accuracy) {
    opt::EvalMetrics m;
    m.energy_per_request_j = KwhToJoules(e_units);
    m.accuracy = accuracy;
    m.p95_ms = 10.0;
    return m;
  };
  const opt::EvalMetrics a = metrics(0.4, 96.0);  // dAccuracy = -4
  const opt::EvalMetrics b = metrics(1.2, 98.0);  // dAccuracy = -2

  TextTable table({"ci", "config", "E*ci", "dCarbon %", "dAccuracy %",
                   "objective", "preferred"});
  for (double ci : {500.0, 100.0}) {
    const double fa = opt::ObjectiveF(a, params, ci);
    const double fb = opt::ObjectiveF(b, params, ci);
    for (const auto& [name, m, f] :
         {std::tuple{"A (E=0.4)", a, fa}, std::tuple{"B (E=1.2)", b, fb}}) {
      table.AddRow({TextTable::Num(ci, 0), name,
                    TextTable::Num(opt::CarbonPerRequestG(m, ci, 1.0), 0),
                    TextTable::Num(opt::DeltaCarbonPct(m, params, ci), 1),
                    TextTable::Num(opt::DeltaAccuracyPct(m, params), 1),
                    TextTable::Num(f, 1),
                    (f >= std::max(fa, fb) ? "<--" : "")});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\npaper values: A@500 = 4.4, A@100 = 6.0, B@100 = 7.0 (match);\n"
         "B@500 prints 3.2 in the paper but Eq. 3 gives 0.1*40 + 0.9*(-2) = "
         "2.2 — a figure typo; the preference order (A at ci=500, B at "
         "ci=100) is unaffected. See EXPERIMENTS.md.\n";
  return 0;
}
