// Fig. 16: Clover across geographies and seasons — carbon savings and
// accuracy loss vs BASE per application, on the named region presets
// (carbon/trace_generator.h) whose first three entries are the paper's
// US CISO March, US CISO September and UK ESO March grids placed at their
// longitudes. The fleet bench (bench_runner fleet_routing) and the fleet
// tests draw regions from the same preset table, so single-cluster and
// fleet results are computed over identical inputs.
#include <iostream>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 16 — geographic/seasonal robustness", flags);

  const std::vector<std::string> region_names = {"us-west", "us-east",
                                                 "eu-west"};
  std::vector<carbon::CarbonTrace> traces;
  traces.reserve(region_names.size());
  for (const std::string& name : region_names) {
    const carbon::RegionPreset* preset = carbon::FindRegionPreset(name);
    CLOVER_CHECK_MSG(preset != nullptr, "unknown region preset " << name);
    traces.push_back(bench::EvalTrace(*preset, flags));
  }

  std::vector<core::ExperimentConfig> configs;
  for (const carbon::CarbonTrace& trace : traces) {
    for (models::Application app :
         {models::Application::kDetection, models::Application::kLanguage,
          models::Application::kClassification}) {
      for (core::Scheme scheme :
           {core::Scheme::kBase, core::Scheme::kClover}) {
        core::ExperimentConfig config;
        config.app = app;
        config.scheme = scheme;
        config.trace = &trace;
        config.duration_hours = flags.hours;
        config.num_gpus = flags.gpus;
        config.sizing_gpus = flags.gpus;
        config.seed = flags.seed;
        configs.push_back(config);
      }
    }
  }
  const auto reports = bench::RunAll(configs);

  TextTable table({"region", "application", "carbon save (%)",
                   "accuracy loss (%)"});
  std::size_t index = 0;
  for (const carbon::CarbonTrace& trace : traces) {
    for (models::Application app :
         {models::Application::kDetection, models::Application::kLanguage,
          models::Application::kClassification}) {
      const core::RunReport& base = reports[index++];
      const core::RunReport& clover = reports[index++];
      table.AddRow({trace.name(),
                    std::string(models::ApplicationName(app)),
                    TextTable::Num(clover.CarbonSavePctVs(base), 1),
                    TextTable::Num(clover.AccuracyLossPctVs(base), 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\npaper: >60% carbon savings with limited accuracy loss "
               "across all regions and seasons.\n";
  return 0;
}
