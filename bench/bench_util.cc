#include "bench_util.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>

#include "common/check.h"

namespace clover::bench {

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      CLOVER_CHECK_MSG(i + 1 < argc, "missing value for " << arg);
      return argv[++i];
    };
    if (arg == "--hours") {
      flags.hours = std::stod(next());
    } else if (arg == "--gpus") {
      flags.gpus = std::stoi(next());
    } else if (arg == "--seed") {
      flags.seed = std::stoull(next());
    } else if (arg == "--out") {
      flags.out_dir = next();
    } else if (arg == "--help") {
      std::cout << "flags: --hours H --gpus N --seed S --out DIR\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  return flags;
}

carbon::CarbonTrace EvalTrace(carbon::TraceProfile profile,
                              const Flags& flags) {
  carbon::TraceGeneratorOptions options;
  options.duration_hours = flags.hours;
  options.seed = flags.seed + 41;  // independent of simulation streams
  return GenerateTrace(profile, options);
}

carbon::CarbonTrace EvalTrace(const carbon::RegionPreset& preset,
                              const Flags& flags) {
  carbon::TraceGeneratorOptions options;
  options.duration_hours = flags.hours;
  options.seed = flags.seed + 41;  // matches RunFleet's trace seeding
  return GenerateRegionTrace(preset, options);
}

std::vector<core::RunReport> RunAll(
    const std::vector<core::ExperimentConfig>& configs, int parallelism) {
  std::vector<core::RunReport> reports(configs.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    core::ExperimentHarness harness(&models::DefaultZoo());
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= configs.size()) return;
      reports[index] = harness.Run(configs[index]);
    }
  };
  const int threads = std::max(1, parallelism);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return reports;
}

std::string OutPath(const Flags& flags, const std::string& file) {
  std::filesystem::create_directories(flags.out_dir);
  return flags.out_dir + "/" + file;
}

void PrintBanner(const std::string& exhibit, const Flags& flags) {
  std::cout << "==== " << exhibit << " ====\n"
            << "trace span " << flags.hours << " h | " << flags.gpus
            << " GPUs | seed " << flags.seed << "\n\n";
}

}  // namespace clover::bench
