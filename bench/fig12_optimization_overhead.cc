// Fig. 12: (a) optimization time as % of the trace span, total and by
// 8-hour interval, for BLOVER vs CLOVER; (b) the disposition of evaluated
// configurations (meets SLA / violates SLA / saved by the evaluation
// cache). Image-classification application, as in the paper.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace clover;
  bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Fig. 12 — optimization overhead and SLA compliance",
                     flags);

  const carbon::CarbonTrace trace =
      bench::EvalTrace(carbon::TraceProfile::kCisoMarch, flags);

  std::vector<core::ExperimentConfig> configs;
  for (core::Scheme scheme : {core::Scheme::kBlover, core::Scheme::kClover}) {
    core::ExperimentConfig config;
    config.app = models::Application::kClassification;
    config.scheme = scheme;
    config.trace = &trace;
    config.duration_hours = flags.hours;
    config.num_gpus = flags.gpus;
    config.sizing_gpus = flags.gpus;
    config.seed = flags.seed;
    configs.push_back(config);
  }
  const auto reports = bench::RunAll(configs);

  // (a) optimization time by 8-hour interval.
  const int buckets = std::max(1, static_cast<int>(flags.hours / 8.0));
  TextTable interval_table({"scheme", "total opt time (%)", "per-interval %",
                            "invocations"});
  for (const core::RunReport& report : reports) {
    std::vector<double> bucket_s(static_cast<std::size_t>(buckets), 0.0);
    for (const core::OptimizationRun& run : report.optimizations) {
      const auto b = std::min<std::size_t>(
          static_cast<std::size_t>(run.start_s / (8.0 * 3600.0)),
          bucket_s.size() - 1);
      bucket_s[b] += run.DurationSeconds();
    }
    std::string per_interval;
    for (double s : bucket_s) {
      if (!per_interval.empty()) per_interval += " ";
      per_interval += TextTable::Num(s / (8.0 * 3600.0) * 100.0, 1);
    }
    interval_table.AddRow(
        {std::string(core::SchemeName(report.scheme)),
         TextTable::Num(report.optimization_seconds /
                            (flags.hours * 3600.0) * 100.0,
                        2),
         per_interval, std::to_string(report.optimizations.size())});
  }
  interval_table.Print(std::cout);

  // (b) evaluated-configuration disposition.
  std::cout << '\n';
  TextTable pie_table({"scheme", "evaluations", "meets SLA (%)",
                       "violates SLA (%)", "saved by cache (%)"});
  for (const core::RunReport& report : reports) {
    std::uint64_t total = 0, meets = 0, violates = 0, saved = 0;
    for (const core::OptimizationRun& run : report.optimizations) {
      for (const opt::EvalRecord& record : run.search.evaluations) {
        ++total;
        if (record.from_cache) {
          ++saved;
        } else if (record.sla_ok) {
          ++meets;
        } else {
          ++violates;
        }
      }
    }
    auto pct = [&](std::uint64_t x) {
      return total ? TextTable::Num(100.0 * x / total, 1) : std::string("-");
    };
    pie_table.AddRow({std::string(core::SchemeName(report.scheme)),
                      std::to_string(total), pct(meets), pct(violates),
                      pct(saved)});
  }
  pie_table.Print(std::cout);
  std::cout << "\npaper: BLOVER spends ~2.3% of the span optimizing vs "
               "CLOVER ~1.2%, both starting >2.5% in the first 8 h;\n"
               "BLOVER evaluates {22.2% meets, 77.8% violates}; CLOVER "
               "{46.8% meets, 35.5% violates, 17.7% saved}.\n";
  return 0;
}
