// Microbenchmarks for the discrete-event simulator: sustained event
// throughput for BASE (10 instances) and fully partitioned (70 instances)
// clusters — the number that determines how cheap 48-hour evaluations are.
#include <benchmark/benchmark.h>

#include "carbon/trace.h"
#include "sim/arrivals.h"
#include "sim/cluster_sim.h"

namespace {

using namespace clover;

const carbon::CarbonTrace& FlatTrace() {
  static const carbon::CarbonTrace trace(
      "flat", 3600.0, std::vector<double>(100000, 200.0));
  return trace;
}

void RunHour(benchmark::State& state, serving::Deployment deployment,
             double rate) {
  for (auto _ : state) {
    sim::SimOptions options;
    options.arrival_rate_qps = rate;
    options.window_seconds = 300.0;
    options.seed = 1;
    sim::ClusterSim sim(std::move(deployment), models::DefaultZoo(),
                        &FlatTrace(), options);
    sim.AdvanceTo(3600.0);
    benchmark::DoNotOptimize(sim.total_completions());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sim.total_arrivals()));
    deployment = sim.deployment();
  }
}

void BM_SimHour_Base10Gpus(benchmark::State& state) {
  const auto app = models::Application::kClassification;
  RunHour(state, serving::MakeBase(app, 10),
          sim::SizeArrivalRate(models::DefaultZoo(), app, 10, 0.75));
}
BENCHMARK(BM_SimHour_Base10Gpus)->Unit(benchmark::kMillisecond);

void BM_SimHour_Partitioned70Slices(benchmark::State& state) {
  const auto app = models::Application::kClassification;
  RunHour(state,
          serving::MakeCo2Opt(app, 10, models::DefaultZoo()),
          sim::SizeArrivalRate(models::DefaultZoo(), app, 10, 0.75));
}
BENCHMARK(BM_SimHour_Partitioned70Slices)->Unit(benchmark::kMillisecond);

void BM_MeasureProbe(benchmark::State& state) {
  const auto app = models::Application::kClassification;
  sim::SimOptions options;
  options.arrival_rate_qps =
      sim::SizeArrivalRate(models::DefaultZoo(), app, 10, 0.75);
  options.window_seconds = 300.0;
  options.seed = 1;
  sim::ClusterSim sim(serving::MakeBase(app, 10), models::DefaultZoo(),
                      &FlatTrace(), options);
  sim.AdvanceTo(600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Measure(20.0));
  }
}
BENCHMARK(BM_MeasureProbe)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
