// Table 1: the three ML inference applications and their model variants,
// extended with the perf-model attributes the substitution relies on.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "models/zoo.h"
#include "perf/perf_model.h"

int main(int argc, char** argv) {
  using namespace clover;
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bench::PrintBanner("Table 1 — applications, datasets, architectures, "
                     "variants",
                     flags);

  TextTable table({"application", "dataset", "variant", "metric", "accuracy",
                   "GFLOPs", "params(M)", "mem(GB)", "min slice",
                   "lat@7g(ms)", "lat@min(ms)"});
  for (const models::ModelFamily& family : models::DefaultZoo().families()) {
    for (const models::ModelVariant& variant : family.variants) {
      const mig::SliceType min_slice = perf::PerfModel::MinSlice(variant);
      table.AddRow({std::string(models::ApplicationName(family.app)),
                    family.dataset, variant.name, family.metric,
                    TextTable::Num(variant.accuracy, 1),
                    TextTable::Num(variant.flops_g, 1),
                    TextTable::Num(variant.params_m, 1),
                    TextTable::Num(variant.TotalMemGb(), 2),
                    std::string(mig::Name(min_slice)),
                    TextTable::Num(perf::PerfModel::LatencyMs(
                                       family, variant, mig::SliceType::k7g),
                                   1),
                    TextTable::Num(perf::PerfModel::LatencyMs(family, variant,
                                                              min_slice),
                                   1)});
    }
  }
  table.Print(std::cout);
  return 0;
}
