#!/usr/bin/env python3
"""Validate BENCH_*.json files against the clover-bench-v1 schema.

Usage: validate_bench_json.py [--require-scenario NAME]... FILE [FILE...]

Exits nonzero (with a message per problem) when a file is malformed —
unparsable JSON, wrong schema tag, missing/of-the-wrong-type fields, or
physically impossible values (negative wall time, empty suite). It does
NOT judge regressions: thresholds are a later PR's business; this gate
only guarantees the artifact every CI run uploads is machine-readable.

--require-scenario NAME (repeatable) additionally fails when a file lacks
a scenario row with that name — CI uses it so a suite can never silently
drop a scenario (e.g. fleet_routing) from the baseline artifact.

Stdlib only (json, sys) — no pip dependencies.
"""

import json
import sys

SCENARIO_FIELDS = {
    "name": str,
    "wall_seconds": (int, float),
    "events": int,
    "events_per_sec": (int, float),
    "candidates": int,
    "candidates_per_sec": (int, float),
    "sim_p50_ms": (int, float),
    "sim_p99_ms": (int, float),
    "speedup_vs_serial": (int, float),
    "deterministic": bool,
    "notes": str,
}

# The JSON writer encodes non-finite doubles as null (src/common/json.cc),
# so null is legal for the floating-point metrics and nothing else.
NULLABLE_FIELDS = {
    field
    for field, expected in SCENARIO_FIELDS.items()
    if expected == (int, float)
}

TOP_FIELDS = {
    "schema": str,
    "suite": str,
    "threads": int,
    "host_cores": int,
    "seed": int,
    "build": str,
    "scenarios": list,
}


def validate(path, required_scenarios=()):
    problems = []
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable or unparsable: {error}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for field, expected in TOP_FIELDS.items():
        if field not in doc:
            problems.append(f"{path}: missing top-level field '{field}'")
        elif not isinstance(doc[field], expected) or (
            # bool is an int subclass in Python; no top-level field is bool.
            isinstance(doc[field], bool)
        ):
            problems.append(
                f"{path}: field '{field}' has type "
                f"{type(doc[field]).__name__}, expected {expected}"
            )
    if problems:
        return problems

    if doc["schema"] != "clover-bench-v1":
        problems.append(f"{path}: unknown schema '{doc['schema']}'")
    if doc["threads"] < 1:
        problems.append(f"{path}: threads must be >= 1, got {doc['threads']}")
    if doc["host_cores"] < 1:
        problems.append(
            f"{path}: host_cores must be >= 1, got {doc['host_cores']}"
        )
    if not doc["scenarios"]:
        problems.append(f"{path}: empty scenario list")

    for i, scenario in enumerate(doc["scenarios"]):
        where = f"{path}: scenarios[{i}]"
        if not isinstance(scenario, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, expected in SCENARIO_FIELDS.items():
            if field not in scenario:
                problems.append(f"{where}: missing field '{field}'")
            elif scenario[field] is None:
                if field not in NULLABLE_FIELDS:
                    problems.append(f"{where}: field '{field}' is null")
            elif not isinstance(scenario[field], expected):
                # bool is an int subclass in Python; keep them distinct.
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(scenario[field]).__name__}"
                )
            elif field != "deterministic" and isinstance(scenario[field], bool):
                problems.append(f"{where}: field '{field}' is a bool")
        if isinstance(scenario.get("wall_seconds"), (int, float)) and (
            scenario["wall_seconds"] is not None and scenario["wall_seconds"] < 0
        ):
            problems.append(f"{where}: negative wall_seconds")
        if isinstance(scenario.get("name"), str) and not scenario["name"]:
            problems.append(f"{where}: empty name")

    present = {
        scenario.get("name")
        for scenario in doc["scenarios"]
        if isinstance(scenario, dict)
    }
    for name in required_scenarios:
        if name not in present:
            problems.append(f"{path}: missing required scenario '{name}'")
    return problems


def main(argv):
    required = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require-scenario":
            if i + 1 >= len(argv):
                print("--require-scenario needs a value", file=sys.stderr)
                return 2
            required.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_problems = []
    for path in paths:
        all_problems.extend(validate(path, required))
    for problem in all_problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if not all_problems:
        for path in paths:
            print(f"ok {path}")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
