#!/usr/bin/env python3
"""Validate BENCH_*.json / CAMPAIGN_*.json files (clover-bench-v1) and
gate them against a baseline.

Usage:
  validate_bench_json.py [--require-scenario NAME]...
                         [--baseline FILE] [--tolerance PCT] [--hard]
                         [--min-speedup NAME=X]...
                         FILE [FILE...]

Schema mode (always on): exits nonzero (with a message per problem) when a
file is malformed — unparsable JSON, wrong schema tag, missing/of-the-
wrong-type fields, physically impossible values (negative wall time, empty
suite), or duplicate scenario names (a baseline compare keys rows by name,
so a duplicate would silently shadow a measurement).

--require-scenario NAME (repeatable) additionally fails when a file lacks
a scenario row with that name — CI uses it so a suite can never silently
drop a scenario (e.g. fleet_routing) from the baseline artifact.

Baseline mode (--baseline FILE, default tolerance 25%): compares each
candidate FILE against the baseline by scenario name.
  * HARD failures (exit 1): a scenario present in the baseline is missing
    from the candidate (dropped coverage), or either file fails schema
    validation.
  * Metric findings: throughput (events_per_sec, candidates_per_sec)
    lower, simulated latency (sim_p50_ms, sim_p99_ms) higher, or parallel
    speedup (speedup_vs_serial) lower, than the baseline by more than the
    tolerance. Without --hard these are SOFT (exit 0): GitHub `::warning::`
    annotations plus a markdown table appended to $GITHUB_STEP_SUMMARY
    (printed to stdout when the variable is unset). A `deterministic:
    false` row is already a hard failure at bench time via the producer's
    exit status.
  * --hard promotes metric findings to hard failures (exit 1) — but only
    when the candidate and the baseline report the same host_cores. On a
    different host the wall-clock columns still get compared and reported
    (throughput and simulated latency are meaningful cross-host signals,
    just noisier), but stay soft even under --hard: failing a job over
    hardware drift would teach people to ignore the gate. Scenarios new
    in the candidate (no baseline row yet) are never compared — the first
    run that introduces a scenario establishes its baseline, it cannot
    regress against nothing.
  * speedup_vs_serial is only compared when host_cores match: a speedup
    measured on a 16-core runner says nothing about a 2-core one (on a
    core-starved host the "speedup" is legitimately ~1x), so cross-host
    comparisons of that metric are skipped with a note. Everything else
    IS compared cross-host (see above) — only this one column is
    host-scoped.
  * Per-scenario tolerance: SCENARIO_TOLERANCE_PCT widens the gate for
    scenarios whose smoke-scale wall time is milliseconds (where scheduler
    jitter dominates); --tolerance sets the default for the rest.

--min-speedup NAME=X (repeatable) asserts an absolute floor on a candidate
scenario's speedup_vs_serial — always a hard failure, no baseline needed.
The multicore CI job uses it to pin "parallel actually parallelizes"
independently of any drift-relative gate.

Stdlib only (json, os, sys) — no pip dependencies.
"""

import json
import os
import sys

SCENARIO_FIELDS = {
    "name": str,
    "wall_seconds": (int, float),
    "events": int,
    "events_per_sec": (int, float),
    "candidates": int,
    "candidates_per_sec": (int, float),
    "sim_p50_ms": (int, float),
    "sim_p99_ms": (int, float),
    "speedup_vs_serial": (int, float),
    "deterministic": bool,
    "notes": str,
}

# The JSON writer encodes non-finite doubles as null (src/common/json.cc),
# so null is legal for the floating-point metrics and nothing else.
NULLABLE_FIELDS = {
    field
    for field, expected in SCENARIO_FIELDS.items()
    if expected == (int, float)
}

TOP_FIELDS = {
    "schema": str,
    "suite": str,
    "threads": int,
    "host_cores": int,
    "seed": int,
    "build": str,
    "scenarios": list,
}

# Per-scenario tolerance overrides (percent). Scenarios whose smoke-scale
# wall time is a handful of milliseconds measure scheduler jitter as much
# as the code; their gate is wider than the --tolerance default.
SCENARIO_TOLERANCE_PCT = {
    "opt_screened": 35.0,   # ~10 ms of wall at smoke scale
    "live_serving": 40.0,   # loopback TCP wall clock
    "obs_overhead": 40.0,   # differences of small wall times
    "meanfield_fleet": 50.0,  # whole scenario is ~10 ms at smoke scale
}

# Metrics the baseline compare judges: (field, direction). "higher" means
# larger-is-better (throughput); "lower" means smaller-is-better (latency).
COMPARE_METRICS = (
    ("events_per_sec", "higher"),
    ("candidates_per_sec", "higher"),
    ("sim_p50_ms", "lower"),
    ("sim_p99_ms", "lower"),
    # Host-dependent: only compared when host_cores matches the baseline
    # (see module docstring).
    ("speedup_vs_serial", "higher"),
)


def validate(path, required_scenarios=()):
    problems = []
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable or unparsable: {error}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for field, expected in TOP_FIELDS.items():
        if field not in doc:
            problems.append(f"{path}: missing top-level field '{field}'")
        elif not isinstance(doc[field], expected) or (
            # bool is an int subclass in Python; no top-level field is bool.
            isinstance(doc[field], bool)
        ):
            problems.append(
                f"{path}: field '{field}' has type "
                f"{type(doc[field]).__name__}, expected {expected}"
            )
    if problems:
        return problems

    if doc["schema"] != "clover-bench-v1":
        problems.append(f"{path}: unknown schema '{doc['schema']}'")
    if doc["threads"] < 1:
        problems.append(f"{path}: threads must be >= 1, got {doc['threads']}")
    if doc["host_cores"] < 1:
        problems.append(
            f"{path}: host_cores must be >= 1, got {doc['host_cores']}"
        )
    if not doc["scenarios"]:
        problems.append(f"{path}: empty scenario list")

    for i, scenario in enumerate(doc["scenarios"]):
        where = f"{path}: scenarios[{i}]"
        if not isinstance(scenario, dict):
            problems.append(f"{where}: not an object")
            continue
        for field, expected in SCENARIO_FIELDS.items():
            if field not in scenario:
                problems.append(f"{where}: missing field '{field}'")
            elif scenario[field] is None:
                if field not in NULLABLE_FIELDS:
                    problems.append(f"{where}: field '{field}' is null")
            elif not isinstance(scenario[field], expected):
                # bool is an int subclass in Python; keep them distinct.
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(scenario[field]).__name__}"
                )
            elif field != "deterministic" and isinstance(scenario[field], bool):
                problems.append(f"{where}: field '{field}' is a bool")
        if isinstance(scenario.get("wall_seconds"), (int, float)) and (
            scenario["wall_seconds"] is not None and scenario["wall_seconds"] < 0
        ):
            problems.append(f"{where}: negative wall_seconds")
        if isinstance(scenario.get("name"), str) and not scenario["name"]:
            problems.append(f"{where}: empty name")

    present = {}
    for i, scenario in enumerate(doc["scenarios"]):
        if not isinstance(scenario, dict):
            continue
        name = scenario.get("name")
        if not isinstance(name, str):
            continue
        if name in present:
            # A duplicate would make a baseline compare (and any consumer
            # keying rows by name) silently pick one of the two rows.
            problems.append(
                f"{path}: duplicate scenario name '{name}' "
                f"(scenarios[{present[name]}] and scenarios[{i}])"
            )
        else:
            present[name] = i
    for name in required_scenarios:
        if name not in present:
            problems.append(f"{path}: missing required scenario '{name}'")
    return problems


def load_doc(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def scenario_map(doc):
    return {
        scenario["name"]: scenario
        for scenario in doc["scenarios"]
        if isinstance(scenario, dict) and isinstance(scenario.get("name"), str)
    }


def tolerance_for(name, default_pct):
    return SCENARIO_TOLERANCE_PCT.get(name, default_pct)


def compare_against_baseline(path, baseline_path, tolerance_pct, hard_mode):
    """Returns (hard_problems, soft_regressions).

    soft_regressions: list of (scenario, metric, baseline, candidate,
    delta_pct, tol_pct) tuples where delta_pct is the relative change in
    the "bad" direction that exceeded tol_pct. With hard_mode and matching
    host_cores they land in hard_problems instead (see module docstring).
    """
    hard = []
    soft = []
    base_doc = load_doc(baseline_path)
    cand_doc = load_doc(path)
    base = scenario_map(base_doc)
    cand = scenario_map(cand_doc)
    # Parallel speedup depends on the core count the run had to work with;
    # comparing it across hosts manufactures regressions out of hardware.
    # The other metrics stay compared cross-host, but findings stay soft.
    same_host = base_doc.get("host_cores") == cand_doc.get("host_cores")
    if not same_host:
        print(
            f"note: {path} ran on {cand_doc.get('host_cores')} host cores vs "
            f"baseline's {base_doc.get('host_cores')}; skipping "
            "speedup_vs_serial comparison"
            + (" and demoting --hard findings to soft" if hard_mode else "")
        )
    for name in base:
        if name not in cand:
            hard.append(
                f"{path}: scenario '{name}' present in baseline "
                f"{baseline_path} was dropped"
            )
    for name, base_row in base.items():
        cand_row = cand.get(name)
        if cand_row is None:
            continue
        tol_pct = tolerance_for(name, tolerance_pct)
        for metric, direction in COMPARE_METRICS:
            if metric == "speedup_vs_serial" and not same_host:
                continue
            base_value = base_row.get(metric)
            cand_value = cand_row.get(metric)
            # Nulls (non-finite at emit time) and zero baselines carry no
            # regression signal for a ratio test.
            if not isinstance(base_value, (int, float)) or isinstance(
                base_value, bool
            ):
                continue
            if not isinstance(cand_value, (int, float)) or isinstance(
                cand_value, bool
            ):
                continue
            if base_value <= 0:
                continue
            if direction == "higher":
                delta_pct = (base_value - cand_value) / base_value * 100.0
            else:
                delta_pct = (cand_value - base_value) / base_value * 100.0
            if delta_pct > tol_pct:
                if hard_mode and same_host:
                    hard.append(
                        f"{path}: perf hard-gate: {name}.{metric} "
                        f"{base_value:.6g} -> {cand_value:.6g} "
                        f"({delta_pct:+.1f}% worse, tolerance {tol_pct:g}%)"
                    )
                else:
                    soft.append(
                        (name, metric, base_value, cand_value, delta_pct,
                         tol_pct)
                    )
    return hard, soft


def check_min_speedups(path, floors):
    """Absolute speedup_vs_serial floors; every violation is hard."""
    problems = []
    doc = load_doc(path)
    rows = scenario_map(doc)
    for name, floor in floors:
        row = rows.get(name)
        if row is None:
            problems.append(
                f"{path}: --min-speedup names scenario '{name}' which is "
                "not in the file"
            )
            continue
        value = row.get("speedup_vs_serial")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(
                f"{path}: scenario '{name}' has no numeric "
                "speedup_vs_serial to hold to the --min-speedup floor"
            )
        elif value < floor:
            problems.append(
                f"{path}: scenario '{name}' speedup_vs_serial {value:.3g} "
                f"below the --min-speedup floor {floor:g}"
            )
    return problems


def emit_soft_report(path, baseline_path, regressions):
    for name, metric, base_value, cand_value, delta_pct, tol_pct in (
        regressions
    ):
        # GitHub annotation; a no-op string on other terminals.
        print(
            f"::warning file={path}::perf soft-gate: {name}.{metric} "
            f"{base_value:.6g} -> {cand_value:.6g} "
            f"({delta_pct:+.1f}% worse, tolerance {tol_pct:g}%)"
        )
    lines = [
        "### Perf soft-gate: regressions beyond tolerance",
        "",
        f"`{path}` vs baseline `{baseline_path}` — soft findings only "
        "(CI runners are noisy; investigate before merging, the job stays "
        "green):",
        "",
        "| scenario | metric | baseline | candidate | change | tolerance |",
        "|---|---|---:|---:|---:|---:|",
    ]
    for name, metric, base_value, cand_value, delta_pct, tol_pct in (
        regressions
    ):
        lines.append(
            f"| {name} | {metric} | {base_value:.6g} | {cand_value:.6g} "
            f"| {delta_pct:+.1f}% worse | {tol_pct:g}% |"
        )
    text = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text)


def main(argv):
    required = []
    baseline = None
    tolerance = 25.0
    hard_mode = False
    min_speedups = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require-scenario":
            if i + 1 >= len(argv):
                print("--require-scenario needs a value", file=sys.stderr)
                return 2
            required.append(argv[i + 1])
            i += 2
        elif argv[i] == "--baseline":
            if i + 1 >= len(argv):
                print("--baseline needs a value", file=sys.stderr)
                return 2
            baseline = argv[i + 1]
            i += 2
        elif argv[i] == "--hard":
            hard_mode = True
            i += 1
        elif argv[i] == "--min-speedup":
            if i + 1 >= len(argv):
                print("--min-speedup needs NAME=X", file=sys.stderr)
                return 2
            name, sep, floor_text = argv[i + 1].partition("=")
            try:
                floor = float(floor_text) if sep else None
            except ValueError:
                floor = None
            if not name or floor is None or not floor > 0:
                print(
                    f"bad --min-speedup '{argv[i + 1]}' (want NAME=X, X > 0)",
                    file=sys.stderr,
                )
                return 2
            min_speedups.append((name, floor))
            i += 2
        elif argv[i] == "--tolerance":
            if i + 1 >= len(argv):
                print("--tolerance needs a value", file=sys.stderr)
                return 2
            try:
                tolerance = float(argv[i + 1])
            except ValueError:
                print(f"bad --tolerance '{argv[i + 1]}'", file=sys.stderr)
                return 2
            if not tolerance > 0:
                print("--tolerance must be > 0", file=sys.stderr)
                return 2
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    all_problems = []
    for path in paths:
        all_problems.extend(validate(path, required))

    if baseline is not None:
        # The baseline itself must be schema-valid (no required scenarios:
        # it may predate a newly added one) before ratios mean anything.
        baseline_problems = validate(baseline)
        all_problems.extend(baseline_problems)
        if not all_problems:
            for path in paths:
                hard, soft = compare_against_baseline(
                    path, baseline, tolerance, hard_mode
                )
                all_problems.extend(hard)
                if soft:
                    emit_soft_report(path, baseline, soft)

    if min_speedups and not all_problems:
        for path in paths:
            all_problems.extend(check_min_speedups(path, min_speedups))

    for problem in all_problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if not all_problems:
        for path in paths:
            print(f"ok {path}")
    return 1 if all_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
