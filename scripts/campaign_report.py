#!/usr/bin/env python3
"""Render CAMPAIGN_*.json / BENCH_*.json (clover-bench-v1) into one
self-contained HTML report.

Usage:
  campaign_report.py [--out report.html] [--title TEXT] FILE [FILE...]

Files carrying a "campaign" summary block (CAMPAIGN_*.json) each get a
campaign section: grouped bar charts per scheme x app for total carbon,
weighted accuracy, and p95 latency — with min..max whiskers when a
scheme x app group spans several seeds — plus a vs-BASE delta table
(carbon saved %, accuracy loss %, p95 normalized). Plain BENCH_*.json
files form the bench trajectory section: line charts of throughput per
scenario across the files in the order given (pass oldest first).

The output is a single HTML file with inline SVG: no JavaScript, no
external assets, safe to attach as a CI artifact and open anywhere.
Every chart has an equivalent data table (the <details> block beneath
it), so nothing is readable only through color. Stdlib only.
"""

import argparse
import html
import json
import math
import os
import sys

# Categorical palette (fixed slot order, assigned by entity, never cycled)
# validated for CVD separation and lightness band on the light surface.
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
           "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
INK = "#1a1a19"          # primary text
INK_2 = "#55544f"        # secondary text (axis titles, captions)
INK_3 = "#8a8983"        # muted text (tick labels)
GRID = "#e8e7e3"
AXIS = "#c9c8c3"
MAX_SERIES = 8           # beyond this, series fold into the table view

E = html.escape


def fail(message):
    print(f"campaign_report: {message}", file=sys.stderr)
    sys.exit(1)


def load_doc(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as error:
        fail(f"{path}: {error}")
    if not isinstance(doc, dict) or doc.get("schema") != "clover-bench-v1":
        fail(f"{path}: not a clover-bench-v1 document")
    return doc


def fmt(value, digits=3):
    """Compact human number: 3 significant digits, SI suffix above 10k."""
    if value is None:
        return "–"
    if isinstance(value, bool):
        return str(value)
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        return "–"
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= 10 * cut:
            return f"{value / cut:.3g}{suffix}"
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.{digits}g}"


def nice_ticks(hi, count=4):
    """Ticks 0..hi at a round step; returns (ticks, padded_hi)."""
    if hi <= 0:
        return [0.0, 1.0], 1.0
    raw = hi / count
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw:
            break
    ticks = []
    t = 0.0
    while t < hi + step / 2:
        ticks.append(t)
        t += step
    return ticks, ticks[-1]


def swatch_legend(names, colors):
    if len(names) < 2:
        return ""
    items = "".join(
        f'<span class="lg"><span class="sw" '
        f'style="background:{colors[i]}"></span>{E(name)}</span>'
        for i, name in enumerate(names))
    return f'<div class="legend">{items}</div>'


def bar_group_chart(title, unit, groups, series, cell, value_fmt=fmt):
    """Grouped bars: `groups` on x, one bar per `series` member within
    each group. `cell[(group, s)]` -> (mean, lo, hi, n) or None. Whiskers
    (lo..hi) appear when n > 1 — the multi-seed spread."""
    width, height = 640, 260
    ml, mr, mt, mb = 56, 12, 10, 34
    plot_w, plot_h = width - ml - mr, height - mt - mb

    peak = 0.0
    for key, stats in cell.items():
        if stats:
            peak = max(peak, stats[2])
    ticks, y_max = nice_ticks(peak)

    def ypix(v):
        return mt + plot_h * (1.0 - v / y_max)

    out = [f'<svg viewBox="0 0 {width} {height}" role="img" '
           f'aria-label="{E(title)}">']
    out.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    for t in ticks:
        y = ypix(t)
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{width - mr}" '
                   f'y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>')
        out.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
                   f'class="tick">{E(fmt(t))}</text>')
    baseline = ypix(0)

    group_w = plot_w / max(1, len(groups))
    pad = max(4.0, group_w * 0.12)
    bar_gap = 2.0  # surface gap between adjacent bars
    n_series = max(1, len(series))
    bar_w = max(3.0, (group_w - 2 * pad - bar_gap * (n_series - 1)) / n_series)
    total_bars = len(groups) * n_series
    for gi, group in enumerate(groups):
        gx = ml + gi * group_w
        out.append(f'<text x="{gx + group_w / 2:.1f}" y="{height - 12}" '
                   f'text-anchor="middle" class="tick">{E(group)}</text>')
        for si, s in enumerate(series):
            stats = cell.get((group, s))
            if not stats:
                continue
            mean, lo, hi, n = stats
            x = gx + pad + si * (bar_w + bar_gap)
            y = ypix(mean)
            r = min(4.0, bar_w / 2, abs(baseline - y))
            color = PALETTE[si % len(PALETTE)]
            # Rounded data-end at the top, square anchor at the baseline.
            path = (f"M{x:.1f},{baseline:.1f} L{x:.1f},{y + r:.1f} "
                    f"Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} "
                    f"L{x + bar_w - r:.1f},{y:.1f} "
                    f"Q{x + bar_w:.1f},{y:.1f} {x + bar_w:.1f},{y + r:.1f} "
                    f"L{x + bar_w:.1f},{baseline:.1f} Z")
            hover = f"{s} · {group}: {value_fmt(mean)} {unit}"
            if n > 1:
                hover += f" (seeds: {value_fmt(lo)}–{value_fmt(hi)}, n={n})"
            out.append(f'<path d="{path}" fill="{color}">'
                       f'<title>{E(hover)}</title></path>')
            if n > 1 and hi > lo:
                cx = x + bar_w / 2
                ylo, yhi = ypix(lo), ypix(hi)
                out.append(f'<line x1="{cx:.1f}" y1="{ylo:.1f}" '
                           f'x2="{cx:.1f}" y2="{yhi:.1f}" stroke="{INK_2}" '
                           f'stroke-width="1.5"/>')
                for yw in (ylo, yhi):
                    out.append(f'<line x1="{cx - 3:.1f}" y1="{yw:.1f}" '
                               f'x2="{cx + 3:.1f}" y2="{yw:.1f}" '
                               f'stroke="{INK_2}" stroke-width="1.5"/>')
            if total_bars <= MAX_SERIES:  # selective direct labels
                out.append(f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                           f'text-anchor="middle" class="val">'
                           f'{E(value_fmt(mean))}</text>')
    out.append(f'<line x1="{ml}" y1="{baseline:.1f}" x2="{width - mr}" '
               f'y2="{baseline:.1f}" stroke="{AXIS}" stroke-width="1"/>')
    out.append(f'<text x="{ml}" y="{mt + 2}" class="unit" '
               f'text-anchor="start" transform="rotate(0)">{E(unit)}</text>')
    out.append("</svg>")
    colors = [PALETTE[i % len(PALETTE)] for i in range(len(series))]
    return (f'<figure><figcaption>{E(title)}</figcaption>'
            f'{swatch_legend(series, colors)}{"".join(out)}</figure>')


def line_chart(title, unit, x_labels, series):
    """`series`: list of (name, [value-or-None per x])."""
    width, height = 640, 260
    ml, mr, mt, mb = 56, 96, 10, 34  # right margin hosts end labels
    plot_w, plot_h = width - ml - mr, height - mt - mb

    peak = 0.0
    for _, values in series:
        for v in values:
            if v is not None:
                peak = max(peak, v)
    ticks, y_max = nice_ticks(peak)

    def xpix(i):
        if len(x_labels) == 1:
            return ml + plot_w / 2
        return ml + plot_w * i / (len(x_labels) - 1)

    def ypix(v):
        return mt + plot_h * (1.0 - v / y_max)

    out = [f'<svg viewBox="0 0 {width} {height}" role="img" '
           f'aria-label="{E(title)}">']
    out.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    for t in ticks:
        y = ypix(t)
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{width - mr}" '
                   f'y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>')
        out.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" text-anchor="end" '
                   f'class="tick">{E(fmt(t))}</text>')
    for i, label in enumerate(x_labels):
        out.append(f'<text x="{xpix(i):.1f}" y="{height - 12}" '
                   f'text-anchor="middle" class="tick">{E(label)}</text>')
    for si, (name, values) in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        points = [(xpix(i), ypix(v), i, v)
                  for i, v in enumerate(values) if v is not None]
        if len(points) >= 2:
            d = "M" + " L".join(f"{x:.1f},{y:.1f}" for x, y, _, _ in points)
            out.append(f'<path d="{d}" fill="none" stroke="{color}" '
                       f'stroke-width="2"/>')
        for x, y, i, v in points:
            out.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                       f'fill="{color}" stroke="{SURFACE}" stroke-width="2">'
                       f'<title>{E(name)} · {E(x_labels[i])}: '
                       f'{E(fmt(v))} {E(unit)}</title></circle>')
        if points and len(series) <= 4:  # direct label at the line end
            x, y, _, _ = points[-1]
            out.append(f'<text x="{x + 8:.1f}" y="{y + 3.5:.1f}" '
                       f'class="val">{E(name)}</text>')
    out.append(f'<line x1="{ml}" y1="{ypix(0):.1f}" x2="{width - mr}" '
               f'y2="{ypix(0):.1f}" stroke="{AXIS}" stroke-width="1"/>')
    out.append(f'<text x="{ml}" y="{mt + 2}" class="unit">{E(unit)}</text>')
    out.append("</svg>")
    colors = [PALETTE[i % len(PALETTE)] for i in range(len(series))]
    names = [name for name, _ in series]
    return (f'<figure><figcaption>{E(title)}</figcaption>'
            f'{swatch_legend(names, colors)}{"".join(out)}</figure>')


def data_table(headers, rows):
    head = "".join(f"<th>{E(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{E(str(c))}</td>" for c in row) + "</tr>"
        for row in rows)
    return (f'<details><summary>data table</summary><table>'
            f'<thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table></details>')


def aggregate(rows, metric):
    """(scheme, app) -> (mean, min, max, n) over the summary rows (one row
    per cell; several rows per scheme x app when the grid spans seeds)."""
    cell = {}
    for key, group in rows.items():
        values = [r[metric] for r in group
                  if isinstance(r.get(metric), (int, float))]
        if values:
            cell[key] = (sum(values) / len(values), min(values),
                         max(values), len(values))
    return cell


def campaign_section(doc, label):
    campaign = doc["campaign"]
    summary = campaign.get("summary", [])
    parts = [f'<h2>campaign <code>{E(campaign.get("name", label))}</code>'
             f'</h2>']
    if campaign.get("description"):
        parts.append(f'<p class="muted">{E(campaign["description"])}</p>')
    parts.append(
        f'<p class="muted">{campaign.get("unique_cells", len(summary))} '
        f'cells · mode {E(str(campaign.get("mode", "?")))} · source '
        f'<code>{E(label)}</code></p>')
    if not summary:
        parts.append("<p>no summary rows</p>")
        return "".join(parts)

    # Entity order is fixed: schemes sorted with BASE first, so BASE is
    # always the same palette slot in every chart of every report.
    schemes = sorted({r["scheme"] for r in summary},
                     key=lambda s: (s != "BASE", s))
    apps = sorted({r["app"] for r in summary})
    grouped = {}
    for r in summary:
        grouped.setdefault((r["app"], r["scheme"]), []).append(r)

    for metric, title, unit in (
            ("total_carbon_g", "Operational carbon per application", "gCO2"),
            ("weighted_accuracy", "Request-weighted accuracy", "%"),
            ("p95_ms", "End-to-end p95 latency", "ms")):
        parts.append(bar_group_chart(title, unit, apps, schemes,
                                     aggregate(grouped, metric)))

    # vs-BASE deltas: mean over seeds, with the seed spread when n > 1.
    delta_rows = []
    for app in apps:
        for scheme in schemes:
            if scheme == "BASE":
                continue
            group = grouped.get((app, scheme), [])
            row = [app, scheme]
            for metric in ("carbon_save_pct_vs_base",
                           "accuracy_loss_pct_vs_base", "p95_norm_vs_base"):
                values = [r[metric] for r in group
                          if isinstance(r.get(metric), (int, float))]
                if not values:
                    row.append("–")
                elif len(values) == 1:
                    row.append(fmt(values[0]))
                else:
                    row.append(f"{fmt(sum(values) / len(values))} "
                               f"[{fmt(min(values))}–{fmt(max(values))}]")
            delta_rows.append(row)
    if delta_rows:
        parts.append("<h3>vs BASE (mean [min–max] over seeds)</h3>")
        head = "".join(f"<th>{E(h)}</th>" for h in
                       ("app", "scheme", "carbon saved %",
                        "accuracy loss %", "p95 / BASE"))
        body = "".join(
            "<tr>" + "".join(f"<td>{E(str(c))}</td>" for c in row) + "</tr>"
            for row in delta_rows)
        parts.append(f'<table><thead><tr>{head}</tr></thead>'
                     f'<tbody>{body}</tbody></table>')

    parts.append(data_table(
        ["cell", "scheme", "app", "completions", "carbon g",
         "accuracy %", "p95 ms"],
        [[r.get("cell", "?"), r.get("scheme", "?"), r.get("app", "?"),
          fmt(r.get("completions")), fmt(r.get("total_carbon_g")),
          fmt(r.get("weighted_accuracy")), fmt(r.get("p95_ms"))]
         for r in summary]))
    return "".join(parts)


def trajectory_section(docs):
    labels = [label for label, _ in docs]
    parts = ['<h2>bench trajectory</h2>',
             f'<p class="muted">{len(docs)} BENCH snapshot(s), oldest '
             f'first: {E(", ".join(labels))}</p>']
    for metric, title, unit in (
            ("events_per_sec", "Simulator throughput per scenario",
             "events/s"),
            ("candidates_per_sec", "Optimizer throughput per scenario",
             "candidates/s")):
        names = []
        for _, doc in docs:
            for s in doc.get("scenarios", []):
                if s.get(metric) and s["name"] not in names:
                    names.append(s["name"])
        if not names:
            continue
        shown, folded = names[:MAX_SERIES], names[MAX_SERIES:]
        series = []
        for name in shown:
            values = []
            for _, doc in docs:
                row = next((s for s in doc.get("scenarios", [])
                            if s["name"] == name), None)
                values.append(row.get(metric) if row else None)
            series.append((name, values))
        parts.append(line_chart(title, unit, labels, series))
        if folded:
            parts.append(f'<p class="muted">{len(folded)} scenario(s) not '
                         f'charted ({E(", ".join(folded))}) — see the '
                         f'table.</p>')
        parts.append(data_table(
            ["scenario"] + labels,
            [[name] + [fmt(next((s.get(metric) for s in
                                 doc.get("scenarios", [])
                                 if s["name"] == name), None))
                       for _, doc in docs]
             for name in names]))
    return "".join(parts)


CSS = f"""
body {{ background: {SURFACE}; color: {INK}; margin: 2rem auto;
       max-width: 44rem; padding: 0 1rem;
       font: 14px/1.5 system-ui, sans-serif; }}
h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
h3 {{ font-size: 0.95rem; }}
code {{ background: #f1f0ec; padding: 0 0.25em; border-radius: 3px; }}
.muted {{ color: {INK_3}; }}
figure {{ margin: 1.25rem 0; }}
figcaption {{ color: {INK_2}; font-weight: 600; margin-bottom: 0.25rem; }}
svg {{ width: 100%; height: auto; display: block; }}
svg text {{ font: 11px system-ui, sans-serif; fill: {INK_3}; }}
svg text.val {{ fill: {INK_2}; }}
svg text.unit {{ fill: {INK_2}; font-weight: 600; }}
.legend {{ display: flex; gap: 1rem; flex-wrap: wrap; margin: 0.25rem 0;
           color: {INK_2}; }}
.lg {{ display: inline-flex; align-items: center; gap: 0.35rem; }}
.sw {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
table {{ border-collapse: collapse; margin: 0.5rem 0; width: 100%; }}
th, td {{ text-align: left; padding: 0.25rem 0.6rem; border-bottom:
          1px solid {GRID}; font-variant-numeric: tabular-nums; }}
th {{ color: {INK_2}; }}
details summary {{ color: {INK_3}; cursor: pointer; margin-top: 0.25rem; }}
"""


def main():
    parser = argparse.ArgumentParser(
        description="Render clover-bench-v1 JSON files to one HTML report.")
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--out", default="report.html")
    parser.add_argument("--title", default="clover campaign report")
    args = parser.parse_args()

    campaigns, benches = [], []
    for path in args.files:
        doc = load_doc(path)
        label = os.path.splitext(os.path.basename(path))[0]
        if "campaign" in doc:
            campaigns.append((label, doc))
        else:
            benches.append((label, doc))

    body = [f"<h1>{E(args.title)}</h1>",
            f'<p class="muted">{len(campaigns)} campaign(s), '
            f'{len(benches)} bench snapshot(s)</p>']
    for label, doc in campaigns:
        body.append(campaign_section(doc, label))
    if benches:
        body.append(trajectory_section(benches))

    document = (f"<!doctype html><html lang=\"en\"><head>"
                f"<meta charset=\"utf-8\">"
                f"<meta name=\"viewport\" "
                f"content=\"width=device-width, initial-scale=1\">"
                f"<title>{E(args.title)}</title><style>{CSS}</style>"
                f"</head><body>{''.join(body)}</body></html>\n")
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(document)
    print(f"wrote {args.out} ({len(document)} bytes, "
          f"{len(campaigns)} campaign(s), {len(benches)} bench file(s))")


if __name__ == "__main__":
    main()
