#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (as written by obs/trace.cc).

Stdlib-only, same spirit as validate_bench_json.py: CI runs it against the
smoke traces (bench_runner's TRACE_smoke.json and a clover_loadgen
--trace-out dump) so a malformed trace fails the build before anyone loses
an afternoon in Perfetto.

Checks (JSON Object Format, trace_event spec):
  * top level is an object with a traceEvents array
  * every event has name (string), ph (string), pid (int), tid (int), and
    a numeric ts unless ph == "M" (metadata carries no timestamp)
  * ph is one of B E X I M
  * per (pid, tid) lane, ts is monotone non-decreasing in array order
    (obs/trace.cc emits per-thread rings oldest-first and splits restarted
    virtual timelines onto fresh synthetic tids, so any regression is a
    writer bug)
  * B/E events pair up per (pid, tid): no E without an open B, nothing
    left open at the end (the dump sanitizer is supposed to guarantee this)
  * X (complete) events carry a numeric non-negative dur

Exit status: 0 valid, 1 validation failure, 2 usage/IO error.
"""
import json
import sys

VALID_PHASES = {"B", "E", "X", "I", "M"}


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ERROR: cannot load {path}: {e}")
        sys.exit(2)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not an array")

    last_ts = {}    # (pid, tid) -> last seen ts
    open_b = {}     # (pid, tid) -> stack of open B event names
    counted = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        name = e.get("name")
        ph = e.get("ph")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing/empty name")
        if not isinstance(ph, str) or ph not in VALID_PHASES:
            fail(f"{where} ({name}): bad ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where} ({name}): missing integer {key}")
        if ph == "M":
            continue  # metadata: no ts required
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{where} ({name}): missing numeric ts")
        lane = (e["pid"], e["tid"])
        if lane in last_ts and ts < last_ts[lane]:
            fail(f"{where} ({name}): ts {ts} < {last_ts[lane]} on "
                 f"pid={lane[0]} tid={lane[1]} (non-monotone lane)")
        last_ts[lane] = ts
        if ph == "B":
            open_b.setdefault(lane, []).append(name)
        elif ph == "E":
            stack = open_b.get(lane)
            if not stack:
                fail(f"{where} ({name}): E without a matching B on "
                     f"pid={lane[0]} tid={lane[1]}")
            stack.pop()
        elif ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ({name}): X event needs numeric dur >= 0")
        counted += 1

    for lane, stack in open_b.items():
        if stack:
            fail(f"unclosed B events on pid={lane[0]} tid={lane[1]}: "
                 f"{stack[:5]}")

    lanes = len(last_ts)
    print(f"ok {path}: {counted} events across {lanes} lanes "
          f"({len(events) - counted} metadata)")


def main(argv):
    if len(argv) < 2:
        print("usage: validate_trace_json.py TRACE.json...")
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
