#!/usr/bin/env bash
# Tier-1 verify: configure -> build -> ctest, the loop CI runs on every
# push. Usage: scripts/verify.sh [build-dir] (default: build).
#
# Set CLOVER_SKIP_SANITIZE=1 to skip the second (ASan+UBSan Debug) build,
# e.g. for a quick inner-loop run; CI always runs it.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Perf baseline: the bench_runner_smoke ctest above already ran the smoke
# suite (fleet_routing + fault_recovery included) and wrote its JSON;
# validate the schema and the required scenarios (mirrors the CI step).
if command -v python3 >/dev/null; then
  python3 scripts/validate_bench_json.py \
    --require-scenario fleet_routing \
    --require-scenario fault_recovery \
    "$BUILD_DIR"/bench/bench_smoke_out/BENCH_smoke.json
fi

# ASan + UBSan sweep of the unit suite (mirrors the CI sanitize job).
if [[ "${CLOVER_SKIP_SANITIZE:-}" != 1 ]]; then
  cmake -B "$BUILD_DIR-asan" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCLOVER_SANITIZE=ON
  cmake --build "$BUILD_DIR-asan" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR-asan" -L unit --output-on-failure -j "$(nproc)"
fi
