#!/usr/bin/env bash
# Tier-1 verify: configure -> build -> ctest, the loop CI runs on every
# push. Usage: scripts/verify.sh [build-dir] (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
