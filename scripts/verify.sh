#!/usr/bin/env bash
# Tier-1 verify: configure -> build -> ctest, the loop CI runs on every
# push. Usage: scripts/verify.sh [build-dir] (default: build).
#
# Opt-outs for a quick inner-loop run (CI always runs everything):
#   CLOVER_SKIP_SANITIZE=1  skip the second (ASan+UBSan Debug) build
#   CLOVER_SKIP_CAMPAIGN=1  skip the campaign smoke run
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Failing gates self-diagnose into triage/<name>/ bundles (config, seeds,
# metrics, trace tails, repro.sh — docs/OBSERVABILITY.md). Mirror CI's
# `if: failure()` artifact upload by pointing at whatever bundles the
# failed run left behind.
list_triage_bundles() {
  local status=$?
  if [[ $status -ne 0 ]]; then
    local bundles
    bundles=$(find . -type d -name triage -not -path './.git/*' \
      -exec find {} -mindepth 1 -maxdepth 1 -type d \; 2>/dev/null || true)
    if [[ -n "$bundles" ]]; then
      echo "verify.sh: triage bundles from this failure (see repro.sh inside):" >&2
      printf '  %s\n' $bundles >&2
    fi
  fi
}
trap list_triage_bundles EXIT

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The gate's own regression tests, then the perf baseline: the
# bench_runner_smoke ctest above already ran the smoke suite
# (fleet_routing + fault_recovery + the campaign-routed e2e_step + the
# fluid meanfield_fleet + the loopback live_serving run included) and
# wrote its JSON; validate the schema and required scenarios and hard-gate
# against the committed baseline (regressions beyond the per-scenario
# tolerance fail when host_cores match the baseline's; the validator
# demotes them to warnings on different hardware — mirrors the CI step).
# The committed baseline is Release-built, so — like CI — the compare only
# runs for Release build dirs; Debug numbers would trip on every run.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
BASELINE_ARGS=()
if [[ "${BUILD_TYPE:-Release}" == "Release" ]]; then
  BASELINE_ARGS=(--baseline BENCH_smoke.json --tolerance 25 --hard)
fi
if command -v python3 >/dev/null; then
  python3 scripts/test_validate_bench_json.py
  python3 scripts/validate_bench_json.py \
    --require-scenario fleet_routing \
    --require-scenario fault_recovery \
    --require-scenario e2e_step \
    --require-scenario sharded_sim \
    --require-scenario opt_screened \
    --require-scenario meanfield_fleet \
    --require-scenario live_serving \
    --require-scenario obs_overhead \
    ${BASELINE_ARGS[@]+"${BASELINE_ARGS[@]}"} \
    "$BUILD_DIR"/bench/bench_smoke_out/BENCH_smoke.json
fi

# Flight-recorder smoke: a short loadgen run with tracing on, then
# validate both its trace and the one the bench smoke suite wrote
# (mirrors the CI trace-smoke step; see docs/OBSERVABILITY.md).
if command -v python3 >/dev/null; then
  "$BUILD_DIR"/examples/clover_loadgen --hours 0.25 --workers 2 \
    --trace-out "$BUILD_DIR/trace_smoke.json" \
    --metrics-out "$BUILD_DIR/metrics_smoke.json"
  python3 scripts/validate_trace_json.py \
    "$BUILD_DIR/trace_smoke.json" \
    "$BUILD_DIR"/bench/bench_smoke_out/TRACE_smoke.json
fi

# Campaign smoke: the declarative campaign path end to end — spec reader,
# grid expansion, sharded runner, consolidated clover-bench-v1 artifact —
# validated by the same script (mirrors the CI campaign-smoke step).
if [[ "${CLOVER_SKIP_CAMPAIGN:-}" != 1 ]]; then
  "$BUILD_DIR"/examples/clover_campaign run campaigns/smoke.json \
    --threads 2 --out "$BUILD_DIR/campaign_out"
  if command -v python3 >/dev/null; then
    python3 scripts/validate_bench_json.py \
      "$BUILD_DIR"/campaign_out/CAMPAIGN_smoke.json
  fi
  # Multi-process execution (docs/CAMPAIGNS.md): a 2-worker run must be
  # byte-identical to a 1-worker run of the same spec.
  "$BUILD_DIR"/examples/clover_campaign run campaigns/smoke.json \
    --workers 1 --out "$BUILD_DIR/campaign_w1"
  "$BUILD_DIR"/examples/clover_campaign run campaigns/smoke.json \
    --workers 2 --out "$BUILD_DIR/campaign_w2"
  cmp "$BUILD_DIR"/campaign_w1/CAMPAIGN_smoke.json \
    "$BUILD_DIR"/campaign_w2/CAMPAIGN_smoke.json
  # The self-contained HTML report (mirrors the CI report step).
  if command -v python3 >/dev/null; then
    python3 scripts/campaign_report.py \
      --out "$BUILD_DIR/campaign_report.html" \
      "$BUILD_DIR"/campaign_out/CAMPAIGN_smoke.json
  fi
fi

# ASan + UBSan sweep of the unit suite (mirrors the CI sanitize job).
if [[ "${CLOVER_SKIP_SANITIZE:-}" != 1 ]]; then
  cmake -B "$BUILD_DIR-asan" -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCLOVER_SANITIZE=ON
  cmake --build "$BUILD_DIR-asan" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR-asan" -L unit --output-on-failure -j "$(nproc)"
fi
