#!/usr/bin/env bash
# Tier-1 verify: configure -> build -> ctest, the loop CI runs on every
# push. Usage: scripts/verify.sh [build-dir] (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Perf baseline: the bench_runner_smoke ctest above already ran the smoke
# suite (fleet_routing included) and wrote its JSON; validate the schema
# and the required scenarios (mirrors the CI step).
if command -v python3 >/dev/null; then
  python3 scripts/validate_bench_json.py \
    --require-scenario fleet_routing \
    "$BUILD_DIR"/bench/bench_smoke_out/BENCH_smoke.json
fi
