#!/usr/bin/env python3
"""Regression tests for validate_bench_json.py's gating semantics.

Pins the contract CI leans on, most importantly the host-scoping rule:
throughput (events_per_sec, candidates_per_sec) and simulated latency
(sim_p50_ms, sim_p99_ms) ARE compared across hosts with different
host_cores — only speedup_vs_serial is host_cores-scoped. And --hard
promotes findings to failures only when host_cores match.

Run: python3 scripts/test_validate_bench_json.py   (stdlib only)
"""

import contextlib
import copy
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_bench_json as v  # noqa: E402


def scenario(name, **overrides):
    row = {
        "name": name,
        "wall_seconds": 1.0,
        "events": 1000,
        "events_per_sec": 1000.0,
        "candidates": 0,
        "candidates_per_sec": 0.0,
        "sim_p50_ms": 40.0,
        "sim_p99_ms": 100.0,
        "speedup_vs_serial": 3.0,
        "deterministic": True,
        "notes": "",
    }
    row.update(overrides)
    return row


def doc(scenarios, host_cores=4):
    return {
        "schema": "clover-bench-v1",
        "suite": "smoke",
        "threads": 4,
        "host_cores": host_cores,
        "seed": 1,
        "build": "test",
        "scenarios": scenarios,
    }


class ValidatorTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, document):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return path

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        env_summary = os.environ.pop("GITHUB_STEP_SUMMARY", None)
        try:
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(
                err
            ):
                code = v.main(["validate_bench_json.py"] + argv)
        finally:
            if env_summary is not None:
                os.environ["GITHUB_STEP_SUMMARY"] = env_summary
        return code, out.getvalue(), err.getvalue()

    # -- schema mode -------------------------------------------------------

    def test_valid_file_passes(self):
        path = self.write("ok.json", doc([scenario("sim_hot_path")]))
        code, out, _ = self.run_main([path])
        self.assertEqual(code, 0)
        self.assertIn("ok ", out)

    def test_duplicate_scenario_name_fails(self):
        path = self.write(
            "dup.json", doc([scenario("a"), scenario("a")])
        )
        code, _, err = self.run_main([path])
        self.assertEqual(code, 1)
        self.assertIn("duplicate scenario name", err)

    def test_required_scenario_missing_fails(self):
        path = self.write("ok.json", doc([scenario("sim_hot_path")]))
        code, _, err = self.run_main(
            ["--require-scenario", "fleet_routing", path]
        )
        self.assertEqual(code, 1)
        self.assertIn("missing required scenario", err)

    # -- baseline compare: what is and is not host-scoped ------------------

    def regressed(self, base_host, cand_host, extra=()):
        """Baseline vs a candidate that regressed every compared metric."""
        base = self.write(
            "base.json",
            doc([scenario("sim_hot_path")], host_cores=base_host),
        )
        cand = self.write(
            "cand.json",
            doc(
                [
                    scenario(
                        "sim_hot_path",
                        events_per_sec=100.0,   # -90% throughput
                        sim_p99_ms=400.0,       # 4x latency
                        speedup_vs_serial=1.0,  # -67% speedup
                    )
                ],
                host_cores=cand_host,
            ),
        )
        return self.run_main(list(extra) + ["--baseline", base, cand])

    def test_throughput_and_latency_are_compared_cross_host(self):
        # host_cores differ: throughput and latency regressions must STILL
        # be reported — only speedup_vs_serial is host-scoped. This is the
        # rule a well-meaning "skip everything cross-host" refactor would
        # silently break, hence the pin.
        code, out, _ = self.regressed(base_host=16, cand_host=4)
        self.assertEqual(code, 0)  # soft without --hard
        self.assertIn("sim_hot_path.events_per_sec", out)
        self.assertIn("sim_hot_path.sim_p99_ms", out)

    def test_speedup_is_skipped_cross_host_with_a_note(self):
        code, out, _ = self.regressed(base_host=16, cand_host=4)
        self.assertEqual(code, 0)
        self.assertIn("skipping speedup_vs_serial", out)
        warnings = [l for l in out.splitlines() if l.startswith("::warning")]
        self.assertTrue(warnings)
        self.assertFalse(
            [l for l in warnings if "speedup_vs_serial" in l], warnings
        )

    def test_speedup_is_compared_same_host(self):
        code, out, _ = self.regressed(base_host=4, cand_host=4)
        self.assertEqual(code, 0)
        self.assertIn("sim_hot_path.speedup_vs_serial", out)

    def test_dropped_scenario_is_hard_even_without_hard_flag(self):
        base = self.write(
            "base.json", doc([scenario("a"), scenario("b")])
        )
        cand = self.write("cand.json", doc([scenario("a")]))
        code, _, err = self.run_main(["--baseline", base, cand])
        self.assertEqual(code, 1)
        self.assertIn("was dropped", err)

    def test_new_scenario_in_candidate_is_not_compared(self):
        # First-run scenarios establish their own baseline; nothing to
        # regress against, soft or hard.
        base = self.write("base.json", doc([scenario("a")]))
        cand = self.write(
            "cand.json",
            doc([scenario("a"), scenario("brand_new", events_per_sec=1.0)]),
        )
        code, out, err = self.run_main(["--hard", "--baseline", base, cand])
        self.assertEqual(code, 0, err)
        self.assertNotIn("brand_new", out + err)

    # -- --hard ------------------------------------------------------------

    def test_hard_mode_fails_on_same_host_regression(self):
        code, _, err = self.regressed(
            base_host=4, cand_host=4, extra=["--hard"]
        )
        self.assertEqual(code, 1)
        self.assertIn("perf hard-gate", err)
        self.assertIn("events_per_sec", err)

    def test_hard_mode_stays_soft_cross_host(self):
        code, out, err = self.regressed(
            base_host=16, cand_host=4, extra=["--hard"]
        )
        self.assertEqual(code, 0, err)
        self.assertIn("demoting --hard findings to soft", out)
        self.assertIn("::warning", out)

    def test_within_tolerance_passes_hard(self):
        base = self.write("base.json", doc([scenario("a")]))
        cand = self.write(
            "cand.json",
            doc([scenario("a", events_per_sec=900.0)]),  # -10% < 25%
        )
        code, _, err = self.run_main(["--hard", "--baseline", base, cand])
        self.assertEqual(code, 0, err)

    def test_per_scenario_tolerance_table_is_applied(self):
        # meanfield_fleet has a 50% table entry: a -40% throughput drop
        # must pass even under --hard while the same drop on an un-tabled
        # scenario fails at the default 25%.
        self.assertIn("meanfield_fleet", v.SCENARIO_TOLERANCE_PCT)
        base = self.write(
            "base.json", doc([scenario("meanfield_fleet")])
        )
        cand = self.write(
            "cand.json",
            doc([scenario("meanfield_fleet", events_per_sec=600.0)]),
        )
        code, _, err = self.run_main(["--hard", "--baseline", base, cand])
        self.assertEqual(code, 0, err)

        base2 = self.write("base2.json", doc([scenario("untabled")]))
        cand2 = self.write(
            "cand2.json", doc([scenario("untabled", events_per_sec=600.0)])
        )
        code, _, err = self.run_main(["--hard", "--baseline", base2, cand2])
        self.assertEqual(code, 1)
        self.assertIn("tolerance 25%", err)

    # -- --min-speedup -----------------------------------------------------

    def test_min_speedup_floor_holds(self):
        path = self.write(
            "ok.json", doc([scenario("opt_random", speedup_vs_serial=2.5)])
        )
        code, _, err = self.run_main(
            ["--min-speedup", "opt_random=2.0", path]
        )
        self.assertEqual(code, 0, err)

    def test_min_speedup_floor_violation_is_hard(self):
        path = self.write(
            "low.json", doc([scenario("opt_random", speedup_vs_serial=1.3)])
        )
        code, _, err = self.run_main(
            ["--min-speedup", "opt_random=2.0", path]
        )
        self.assertEqual(code, 1)
        self.assertIn("below the --min-speedup floor", err)

    def test_min_speedup_missing_scenario_is_hard(self):
        path = self.write("ok.json", doc([scenario("sim_hot_path")]))
        code, _, err = self.run_main(
            ["--min-speedup", "opt_random=2.0", path]
        )
        self.assertEqual(code, 1)
        self.assertIn("not in the file", err)

    def test_min_speedup_null_value_is_hard(self):
        path = self.write(
            "null.json",
            doc([scenario("opt_random", speedup_vs_serial=None)]),
        )
        code, _, err = self.run_main(
            ["--min-speedup", "opt_random=2.0", path]
        )
        self.assertEqual(code, 1)
        self.assertIn("no numeric", err)

    def test_bad_min_speedup_syntax_is_usage_error(self):
        path = self.write("ok.json", doc([scenario("a")]))
        for bad in ("opt_random", "opt_random=", "=2.0", "opt_random=-1"):
            code, _, _ = self.run_main(["--min-speedup", bad, path])
            self.assertEqual(code, 2, bad)


if __name__ == "__main__":
    unittest.main()
